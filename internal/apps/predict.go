package apps

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// StockPrediction is the Kwon & Moon (2003) neuro-genetic workload: a GA
// optimises the weights of a small MLP that predicts the next value of a
// price-like time series from a window of recent returns. The synthetic
// series mixes trend, seasonality and autoregressive noise so that a
// linear predictor is beatable and a random one is bad.
type StockPrediction struct {
	series  []float64
	window  int
	hidden  int
	nTrain  int
	returns []float64
}

// NewStockPrediction generates a synthetic daily series of length days
// and sets up an MLP with the given input window and hidden units.
func NewStockPrediction(days, window, hidden int, seed uint64) *StockPrediction {
	r := rng.New(seed)
	sp := &StockPrediction{window: window, hidden: hidden}
	price := 100.0
	phase := r.Float64() * 2 * math.Pi
	ar := 0.0
	for d := 0; d < days; d++ {
		season := 0.004 * math.Sin(2*math.Pi*float64(d)/21+phase)
		ar = 0.6*ar + 0.01*r.NormFloat64()
		ret := 0.0004 + season + ar
		price *= 1 + ret
		sp.series = append(sp.series, price)
	}
	for d := 1; d < len(sp.series); d++ {
		sp.returns = append(sp.returns, sp.series[d]/sp.series[d-1]-1)
	}
	sp.nTrain = len(sp.returns) * 3 / 4
	return sp
}

// WeightCount returns the MLP weight vector length:
// window→hidden dense + hidden biases + hidden→1 + output bias.
func (sp *StockPrediction) WeightCount() int {
	return sp.window*sp.hidden + sp.hidden + sp.hidden + 1
}

// Name implements core.Problem.
func (sp *StockPrediction) Name() string {
	return fmt.Sprintf("stock(w%d,h%d)", sp.window, sp.hidden)
}

// Direction implements core.Problem.
func (*StockPrediction) Direction() core.Direction { return core.Minimize }

// NewGenome implements core.Problem.
func (sp *StockPrediction) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomRealVector(sp.WeightCount(), -2, 2, r)
}

// forward computes the MLP's prediction from the window ending before t.
func (sp *StockPrediction) forward(w []float64, t int) float64 {
	k := 0
	out := 0.0
	hiddenW := w[:sp.window*sp.hidden]
	hiddenB := w[sp.window*sp.hidden : sp.window*sp.hidden+sp.hidden]
	outW := w[sp.window*sp.hidden+sp.hidden : sp.window*sp.hidden+2*sp.hidden]
	outB := w[len(w)-1]
	for h := 0; h < sp.hidden; h++ {
		a := hiddenB[h]
		for i := 0; i < sp.window; i++ {
			a += hiddenW[k] * sp.returns[t-sp.window+i] * 100 // scale returns
			k++
		}
		out += outW[h] * math.Tanh(a)
	}
	return (out + outB) / 100
}

// Evaluate implements core.Problem: mean squared one-step-ahead
// prediction error on the training split, in return units ×1e4 (so
// values are readable).
func (sp *StockPrediction) Evaluate(g core.Genome) float64 {
	w := g.(*genome.RealVector).Genes
	mse := 0.0
	n := 0
	for t := sp.window; t < sp.nTrain; t++ {
		d := sp.forward(w, t) - sp.returns[t]
		mse += d * d
		n++
	}
	return mse / float64(n) * 1e4
}

// TestMSE returns the held-out mean squared error ×1e4.
func (sp *StockPrediction) TestMSE(g core.Genome) float64 {
	w := g.(*genome.RealVector).Genes
	mse := 0.0
	n := 0
	for t := sp.nTrain; t < len(sp.returns); t++ {
		d := sp.forward(w, t) - sp.returns[t]
		mse += d * d
		n++
	}
	return mse / float64(n) * 1e4
}

// BuyAndHoldMSE returns the MSE ×1e4 of always predicting the mean
// training return — the naive baseline Kwon & Moon compared against.
func (sp *StockPrediction) BuyAndHoldMSE() float64 {
	mean := 0.0
	for t := 0; t < sp.nTrain; t++ {
		mean += sp.returns[t]
	}
	mean /= float64(sp.nTrain)
	mse := 0.0
	n := 0
	for t := sp.nTrain; t < len(sp.returns); t++ {
		d := mean - sp.returns[t]
		mse += d * d
		n++
	}
	return mse / float64(n) * 1e4
}

// SpectralEstimation is the Solano (2000) workload: fit the parameters of
// an AR(2) resonator to a synthetic Doppler-like signal by minimising the
// one-step prediction error. Genes: (a1, a2) AR coefficients.
type SpectralEstimation struct {
	signal []float64
	truth  [2]float64
}

// NewSpectralEstimation synthesises n samples of an AR(2) process with a
// random stable resonance drawn from seed.
func NewSpectralEstimation(n int, seed uint64) *SpectralEstimation {
	r := rng.New(seed)
	// Stable resonator: poles at radius ρ∈(0.8,0.95), angle ω∈(0.2π,0.8π).
	rho := r.Range(0.8, 0.95)
	omega := r.Range(0.2*math.Pi, 0.8*math.Pi)
	a1 := 2 * rho * math.Cos(omega)
	a2 := -rho * rho
	se := &SpectralEstimation{truth: [2]float64{a1, a2}}
	y1, y2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		y := a1*y1 + a2*y2 + r.NormFloat64()
		se.signal = append(se.signal, y)
		y2, y1 = y1, y
	}
	return se
}

// Truth returns the generating AR coefficients.
func (se *SpectralEstimation) Truth() [2]float64 { return se.truth }

// Name implements core.Problem.
func (se *SpectralEstimation) Name() string { return "doppler-ar2" }

// Direction implements core.Problem.
func (*SpectralEstimation) Direction() core.Direction { return core.Minimize }

// NewGenome implements core.Problem.
func (se *SpectralEstimation) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomRealVector(2, -2, 2, r)
}

// Evaluate implements core.Problem: mean squared one-step prediction
// error of the candidate AR(2) model.
func (se *SpectralEstimation) Evaluate(g core.Genome) float64 {
	w := g.(*genome.RealVector).Genes
	mse := 0.0
	for i := 2; i < len(se.signal); i++ {
		pred := w[0]*se.signal[i-1] + w[1]*se.signal[i-2]
		d := se.signal[i] - pred
		mse += d * d
	}
	return mse / float64(len(se.signal)-2)
}

// CoefficientError returns the Euclidean distance to the true
// coefficients.
func (se *SpectralEstimation) CoefficientError(g core.Genome) float64 {
	w := g.(*genome.RealVector).Genes
	d1 := w[0] - se.truth[0]
	d2 := w[1] - se.truth[1]
	return math.Sqrt(d1*d1 + d2*d2)
}
