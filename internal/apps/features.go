package apps

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// FeatureSelection is the Moser & Murty (2000) workload: select a feature
// subset that maximises classification accuracy with a parsimony bonus.
// The synthetic dataset has nInformative features that genuinely separate
// the classes plus noise features that do not; the known-good solution is
// the informative subset.
type FeatureSelection struct {
	nFeatures    int
	nInformative int
	train        [][]float64
	trainY       []int
	test         [][]float64
	testY        []int
	classes      int
	// Alpha is the parsimony weight: fitness = accuracy − Alpha·|subset|/n.
	Alpha float64
}

// NewFeatureSelection creates a synthetic classification problem with
// nFeatures total features of which nInformative carry class signal, and
// samples instances per class for train and test.
func NewFeatureSelection(nFeatures, nInformative, classes, samples int, seed uint64) *FeatureSelection {
	if nInformative > nFeatures {
		panic("apps: nInformative exceeds nFeatures")
	}
	r := rng.New(seed)
	fs := &FeatureSelection{
		nFeatures:    nFeatures,
		nInformative: nInformative,
		classes:      classes,
		Alpha:        0.1,
	}
	// Class centroids differ only on informative features.
	centroids := make([][]float64, classes)
	for c := range centroids {
		centroids[c] = make([]float64, nFeatures)
		for f := 0; f < nInformative; f++ {
			centroids[c][f] = 3 * r.NormFloat64()
		}
	}
	gen := func(n int) ([][]float64, []int) {
		var X [][]float64
		var Y []int
		for c := 0; c < classes; c++ {
			for i := 0; i < n; i++ {
				x := make([]float64, nFeatures)
				for f := 0; f < nFeatures; f++ {
					x[f] = centroids[c][f] + r.NormFloat64()
				}
				X = append(X, x)
				Y = append(Y, c)
			}
		}
		return X, Y
	}
	fs.train, fs.trainY = gen(samples)
	fs.test, fs.testY = gen(samples)
	return fs
}

// Name implements core.Problem.
func (fs *FeatureSelection) Name() string {
	return fmt.Sprintf("featsel(%d/%d)", fs.nInformative, fs.nFeatures)
}

// Direction implements core.Problem.
func (*FeatureSelection) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem.
func (fs *FeatureSelection) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(fs.nFeatures, r)
}

// Evaluate implements core.Problem: nearest-centroid accuracy on the test
// split using only the selected features, minus the parsimony penalty.
func (fs *FeatureSelection) Evaluate(g core.Genome) float64 {
	mask := g.(*genome.BitString)
	selected := mask.OnesCount()
	if selected == 0 {
		return 0
	}
	return fs.Accuracy(mask) - fs.Alpha*float64(selected)/float64(fs.nFeatures)
}

// Accuracy returns the nearest-centroid test accuracy of the masked
// feature set (no parsimony term).
func (fs *FeatureSelection) Accuracy(mask *genome.BitString) float64 {
	// Class centroids from the training split, masked.
	cent := make([][]float64, fs.classes)
	count := make([]int, fs.classes)
	for c := range cent {
		cent[c] = make([]float64, fs.nFeatures)
	}
	for i, x := range fs.train {
		c := fs.trainY[i]
		count[c]++
		for f, v := range x {
			cent[c][f] += v
		}
	}
	for c := range cent {
		if count[c] > 0 {
			for f := range cent[c] {
				cent[c][f] /= float64(count[c])
			}
		}
	}
	correct := 0
	for i, x := range fs.test {
		best, bestD := -1, math.Inf(1)
		for c := range cent {
			d := 0.0
			for f := range x {
				if !mask.Get(f) {
					continue
				}
				diff := x[f] - cent[c][f]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best == fs.testY[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(fs.test))
}

// InformativeMask returns the ground-truth informative-feature mask.
func (fs *FeatureSelection) InformativeMask() *genome.BitString {
	b := genome.NewBitString(fs.nFeatures)
	for f := 0; f < fs.nInformative; f++ {
		b.Set(f, true)
	}
	return b
}
