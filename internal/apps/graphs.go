package apps

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// GraphPartition is the graph-bipartitioning workload from §4's problem
// list ("graph bipartity, graph partitioning problem"): split a graph's
// vertices into two halves minimising the edge cut, with a graded penalty
// for imbalance. The synthetic instance is a planted-partition graph, so
// a good cut is known to exist.
type GraphPartition struct {
	n     int
	edges [][2]int
	// planted is the hidden balanced partition used to generate the
	// instance (dense inside, sparse across).
	planted []bool
}

// NewGraphPartition builds a planted-partition graph with n vertices
// (n even), intra-group edge probability pIn and cross-group probability
// pOut drawn from seed.
func NewGraphPartition(n int, pIn, pOut float64, seed uint64) *GraphPartition {
	if n%2 != 0 {
		panic("apps: GraphPartition needs an even vertex count")
	}
	r := rng.New(seed)
	g := &GraphPartition{n: n, planted: make([]bool, n)}
	perm := r.Perm(n)
	for i, v := range perm {
		g.planted[v] = i < n/2
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := pOut
			if g.planted[i] == g.planted[j] {
				p = pIn
			}
			if r.Chance(p) {
				g.edges = append(g.edges, [2]int{i, j})
			}
		}
	}
	return g
}

// Name implements core.Problem.
func (g *GraphPartition) Name() string {
	return fmt.Sprintf("graphpart(%d,%d)", g.n, len(g.edges))
}

// Direction implements core.Problem.
func (*GraphPartition) Direction() core.Direction { return core.Minimize }

// Edges returns the edge count.
func (g *GraphPartition) Edges() int { return len(g.edges) }

// NewGenome implements core.Problem: one side bit per vertex.
func (g *GraphPartition) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomBitString(g.n, r)
}

// CutSize returns the number of edges crossing the partition.
func (g *GraphPartition) CutSize(b *genome.BitString) int {
	cut := 0
	for _, e := range g.edges {
		if b.Get(e[0]) != b.Get(e[1]) {
			cut++
		}
	}
	return cut
}

// Imbalance returns |#side1 − n/2|.
func (g *GraphPartition) Imbalance(b *genome.BitString) int {
	ones := b.OnesCount()
	d := ones - g.n/2
	if d < 0 {
		d = -d
	}
	return d
}

// Evaluate implements core.Problem: cut size plus a strong graded
// imbalance penalty (each displaced vertex costs more than any single
// edge could save).
func (g *GraphPartition) Evaluate(gen core.Genome) float64 {
	b := gen.(*genome.BitString)
	return float64(g.CutSize(b)) + 2*float64(g.Imbalance(b))*float64(g.n)/4
}

// PlantedCut returns the cut size of the hidden planted partition (a
// quality yardstick; the GA can legitimately beat it).
func (g *GraphPartition) PlantedCut() int {
	return g.CutSize(genome.BitStringFromBools(g.planted))
}

// CameraPlacement is Olague (2001)'s photogrammetric network design from
// §4: place K cameras on a viewing sphere around an object so that a set
// of 3-D target points is observed by at least two cameras with good
// triangulation angles. Genes: per camera (azimuth, elevation) on the
// sphere; fitness maximises covered points weighted by the best pairwise
// convergence angle, the core of the original criterion.
type CameraPlacement struct {
	cameras int
	targets [][3]float64
	normals [][3]float64 // surface normal per target: visibility test
	radius  float64
}

// NewCameraPlacement creates an instance with k cameras and n random
// targets on a unit sphere "object" drawn from seed.
func NewCameraPlacement(k, n int, seed uint64) *CameraPlacement {
	r := rng.New(seed)
	cp := &CameraPlacement{cameras: k, radius: 4}
	for i := 0; i < n; i++ {
		// Random point on the unit sphere; its normal points outward.
		v := randomUnit(r)
		cp.targets = append(cp.targets, v)
		cp.normals = append(cp.normals, v)
	}
	return cp
}

func randomUnit(r *rng.Source) [3]float64 {
	for {
		x, y, z := r.Range(-1, 1), r.Range(-1, 1), r.Range(-1, 1)
		n := math.Sqrt(x*x + y*y + z*z)
		if n > 0.1 && n <= 1 {
			return [3]float64{x / n, y / n, z / n}
		}
	}
}

// Name implements core.Problem.
func (cp *CameraPlacement) Name() string {
	return fmt.Sprintf("cameras(%d,%d)", cp.cameras, len(cp.targets))
}

// Direction implements core.Problem.
func (*CameraPlacement) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem: (azimuth, elevation) per camera.
// Azimuth in [0, 2π), elevation in [-π/2, π/2].
func (cp *CameraPlacement) NewGenome(r *rng.Source) core.Genome {
	v := genome.NewRealVector(2*cp.cameras, 0, 1)
	for c := 0; c < cp.cameras; c++ {
		v.Lo[2*c], v.Hi[2*c] = 0, 2*math.Pi
		v.Lo[2*c+1], v.Hi[2*c+1] = -math.Pi/2, math.Pi/2
		v.Genes[2*c] = r.Range(0, 2*math.Pi)
		v.Genes[2*c+1] = r.Range(-math.Pi/2, math.Pi/2)
	}
	return v
}

// cameraPos converts gene pair c to a position on the viewing sphere.
func (cp *CameraPlacement) cameraPos(v *genome.RealVector, c int) [3]float64 {
	az, el := v.Genes[2*c], v.Genes[2*c+1]
	return [3]float64{
		cp.radius * math.Cos(el) * math.Cos(az),
		cp.radius * math.Cos(el) * math.Sin(az),
		cp.radius * math.Sin(el),
	}
}

// sees reports whether a camera at pos sees target t (the target's
// surface normal faces the camera).
func (cp *CameraPlacement) sees(pos [3]float64, t int) bool {
	tg, nrm := cp.targets[t], cp.normals[t]
	dx := [3]float64{pos[0] - tg[0], pos[1] - tg[1], pos[2] - tg[2]}
	dot := dx[0]*nrm[0] + dx[1]*nrm[1] + dx[2]*nrm[2]
	return dot > 0
}

// Coverage returns the fraction of targets seen by ≥2 cameras.
func (cp *CameraPlacement) Coverage(gen core.Genome) float64 {
	v := gen.(*genome.RealVector)
	covered := 0
	for t := range cp.targets {
		seen := 0
		for c := 0; c < cp.cameras; c++ {
			if cp.sees(cp.cameraPos(v, c), t) {
				seen++
				if seen >= 2 {
					covered++
					break
				}
			}
		}
	}
	return float64(covered) / float64(len(cp.targets))
}

// Evaluate implements core.Problem: for every target seen by at least two
// cameras, score the best pairwise convergence angle (ideal near 90°);
// unseen or singly-seen targets score 0. The mean over targets is the
// fitness in [0, 1].
func (cp *CameraPlacement) Evaluate(gen core.Genome) float64 {
	v := gen.(*genome.RealVector)
	positions := make([][3]float64, cp.cameras)
	for c := range positions {
		positions[c] = cp.cameraPos(v, c)
	}
	total := 0.0
	for t := range cp.targets {
		var viewers [][3]float64
		for c := 0; c < cp.cameras; c++ {
			if cp.sees(positions[c], t) {
				viewers = append(viewers, positions[c])
			}
		}
		if len(viewers) < 2 {
			continue
		}
		tg := cp.targets[t]
		best := 0.0
		for i := 0; i < len(viewers); i++ {
			for j := i + 1; j < len(viewers); j++ {
				a := unitDir(viewers[i], tg)
				b := unitDir(viewers[j], tg)
				cos := a[0]*b[0] + a[1]*b[1] + a[2]*b[2]
				angle := math.Acos(clamp(cos, -1, 1))
				// Score peaks at 90° convergence (sin of the angle).
				if s := math.Sin(angle); s > best {
					best = s
				}
			}
		}
		total += best
	}
	return total / float64(len(cp.targets))
}

func unitDir(from, to [3]float64) [3]float64 {
	d := [3]float64{from[0] - to[0], from[1] - to[1], from[2] - to[2]}
	n := math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
	if n == 0 {
		return [3]float64{}
	}
	return [3]float64{d[0] / n, d[1] / n, d[2] / n}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
