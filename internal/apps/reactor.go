package apps

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// ReactorCore is the Pereira & Lapa (2003) workload analogue: assign fuel
// assemblies of different enrichment classes to core positions so the
// power distribution is as flat as possible (minimise the peak factor)
// while keeping the core critical (total reactivity within a band).
//
// The simplified physics: each position has a geometric importance
// (centre > edge); local power = enrichment × importance, smoothed over
// neighbouring positions; peak factor = max(power)/mean(power);
// reactivity = Σ enrichment − target, penalised outside ±tolerance.
type ReactorCore struct {
	side        int // core is side×side
	importance  []float64
	enrichments []float64 // enrichment value per class
	target      float64   // target total enrichment (criticality)
	tol         float64
}

// NewReactorCore creates a side×side core with the given enrichment
// classes.
func NewReactorCore(side int, classes int, seed uint64) *ReactorCore {
	r := rng.New(seed)
	rc := &ReactorCore{side: side}
	c := float64(side-1) / 2
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			// Cosine-bell importance, peaked at the core centre.
			dx := (float64(x) - c) / (c + 1)
			dy := (float64(y) - c) / (c + 1)
			rc.importance = append(rc.importance, math.Cos(dx*math.Pi/2)*math.Cos(dy*math.Pi/2)+0.05)
		}
	}
	for k := 0; k < classes; k++ {
		rc.enrichments = append(rc.enrichments, 1.5+0.7*float64(k)+0.1*r.Float64())
	}
	// Target: mid-class everywhere.
	mid := rc.enrichments[classes/2]
	rc.target = mid * float64(side*side)
	rc.tol = rc.target * 0.05
	return rc
}

// Name implements core.Problem.
func (rc *ReactorCore) Name() string {
	return fmt.Sprintf("reactor(%dx%d,%d)", rc.side, rc.side, len(rc.enrichments))
}

// Direction implements core.Problem.
func (*ReactorCore) Direction() core.Direction { return core.Minimize }

// NewGenome implements core.Problem: one enrichment class per position.
func (rc *ReactorCore) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomIntVector(rc.side*rc.side, len(rc.enrichments), r)
}

// PeakFactor returns max(power)/mean(power) of the loading.
func (rc *ReactorCore) PeakFactor(v *genome.IntVector) float64 {
	n := rc.side * rc.side
	raw := make([]float64, n)
	for i, cls := range v.Genes {
		raw[i] = rc.enrichments[cls] * rc.importance[i]
	}
	// 4-neighbour smoothing models neutron coupling between assemblies.
	power := make([]float64, n)
	for y := 0; y < rc.side; y++ {
		for x := 0; x < rc.side; x++ {
			i := y*rc.side + x
			sum, cnt := raw[i]*2, 2.0
			if x > 0 {
				sum += raw[i-1]
				cnt++
			}
			if x < rc.side-1 {
				sum += raw[i+1]
				cnt++
			}
			if y > 0 {
				sum += raw[i-rc.side]
				cnt++
			}
			if y < rc.side-1 {
				sum += raw[i+rc.side]
				cnt++
			}
			power[i] = sum / cnt
		}
	}
	mean, max := 0.0, 0.0
	for _, p := range power {
		mean += p
		if p > max {
			max = p
		}
	}
	mean /= float64(n)
	if mean == 0 {
		return math.Inf(1)
	}
	return max / mean
}

// ReactivityExcess returns how far the total enrichment is outside the
// criticality band (0 when within the band).
func (rc *ReactorCore) ReactivityExcess(v *genome.IntVector) float64 {
	total := 0.0
	for _, cls := range v.Genes {
		total += rc.enrichments[cls]
	}
	d := math.Abs(total - rc.target)
	if d <= rc.tol {
		return 0
	}
	return d - rc.tol
}

// Evaluate implements core.Problem: peak factor plus a graded criticality
// penalty.
func (rc *ReactorCore) Evaluate(g core.Genome) float64 {
	v := g.(*genome.IntVector)
	return rc.PeakFactor(v) + 0.1*rc.ReactivityExcess(v)
}
