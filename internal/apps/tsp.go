// Package apps implements the application workloads of the survey's §4 as
// synthetic, self-contained optimisation problems: travelling salesman
// (Sena 2001), task scheduling (Kwok & Ahmad 1997), large-scale feature
// selection (Moser & Murty 2000), image registration (Chalermwat 2001,
// Fan 2002), neuro-genetic time-series prediction (Kwon & Moon 2003),
// reactor-core loading (Pereira & Lapa 2003) and spectral estimation
// (Solano 2000), plus the graph-partitioning problem of §4's opening list
// and Olague (2001)'s photogrammetric camera-network design.
//
// Each workload generates its own data deterministically from a seed —
// the survey's applications used proprietary data (LandSat imagery,
// mammograms, stock prices, reactor specifications); the generators here
// preserve the optimisation structure, which is what drives PGA
// behaviour (substitutions documented in DESIGN.md).
package apps

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// TSP is a travelling-salesman instance over a permutation genome.
type TSP struct {
	name string
	xs   []float64
	ys   []float64
	// optimum is the known optimal tour length, or 0 if unknown.
	optimum float64
}

// NewRandomTSP creates n cities uniformly in the unit square (optimum
// unknown).
func NewRandomTSP(n int, seed uint64) *TSP {
	r := rng.New(seed)
	t := &TSP{name: fmt.Sprintf("tsp-random(%d)", n)}
	for i := 0; i < n; i++ {
		t.xs = append(t.xs, r.Float64())
		t.ys = append(t.ys, r.Float64())
	}
	return t
}

// NewClusteredTSP creates n cities in k Gaussian clusters (optimum
// unknown) — the structured instances parallel GAs exploit well.
func NewClusteredTSP(n, k int, seed uint64) *TSP {
	r := rng.New(seed)
	t := &TSP{name: fmt.Sprintf("tsp-clustered(%d,%d)", n, k)}
	cx := make([]float64, k)
	cy := make([]float64, k)
	for i := 0; i < k; i++ {
		cx[i], cy[i] = r.Float64(), r.Float64()
	}
	for i := 0; i < n; i++ {
		c := i % k
		t.xs = append(t.xs, cx[c]+0.03*r.NormFloat64())
		t.ys = append(t.ys, cy[c]+0.03*r.NormFloat64())
	}
	return t
}

// NewCircleTSP places n cities evenly on a unit circle; the optimal tour
// is the circle order with known length 2·n·sin(π/n) — the
// efficacy-measurable instance.
func NewCircleTSP(n int) *TSP {
	t := &TSP{name: fmt.Sprintf("tsp-circle(%d)", n)}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		t.xs = append(t.xs, math.Cos(a))
		t.ys = append(t.ys, math.Sin(a))
	}
	t.optimum = 2 * float64(n) * math.Sin(math.Pi/float64(n))
	return t
}

// Name implements core.Problem.
func (t *TSP) Name() string { return t.name }

// Direction implements core.Problem.
func (*TSP) Direction() core.Direction { return core.Minimize }

// Cities returns the number of cities.
func (t *TSP) Cities() int { return len(t.xs) }

// NewGenome implements core.Problem.
func (t *TSP) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomPermutation(len(t.xs), r)
}

// Evaluate implements core.Problem: closed-tour Euclidean length.
func (t *TSP) Evaluate(g core.Genome) float64 {
	p := g.(*genome.Permutation).Perm
	total := 0.0
	for i := 0; i < len(p); i++ {
		j := (i + 1) % len(p)
		dx := t.xs[p[i]] - t.xs[p[j]]
		dy := t.ys[p[i]] - t.ys[p[j]]
		total += math.Sqrt(dx*dx + dy*dy)
	}
	return total
}

// Optimum implements core.TargetAware when the optimal length is known.
func (t *TSP) Optimum() float64 { return t.optimum }

// Solved implements core.TargetAware (0.1% tolerance; only meaningful for
// instances with a known optimum).
func (t *TSP) Solved(f float64) bool {
	return t.optimum > 0 && f <= t.optimum*1.001
}

// Scheduling is a task-to-processor assignment problem: minimise the
// makespan of n independent tasks with heterogeneous durations on m
// machines (the scheduling application class of §4; Kwok & Ahmad used a
// PGA for precedence-graph scheduling — independent tasks keep the
// synthetic instance self-contained while preserving the load-balancing
// landscape).
type Scheduling struct {
	durations []float64
	machines  int
	// lower is the trivial lower bound max(total/m, max task).
	lower float64
}

// NewScheduling creates n tasks with log-normal-ish durations on m
// machines.
func NewScheduling(n, m int, seed uint64) *Scheduling {
	r := rng.New(seed)
	s := &Scheduling{machines: m}
	total := 0.0
	maxd := 0.0
	for i := 0; i < n; i++ {
		d := math.Exp(r.NormFloat64() * 0.8) // heavy-ish tail
		s.durations = append(s.durations, d)
		total += d
		if d > maxd {
			maxd = d
		}
	}
	s.lower = total / float64(m)
	if maxd > s.lower {
		s.lower = maxd
	}
	return s
}

// Name implements core.Problem.
func (s *Scheduling) Name() string {
	return fmt.Sprintf("sched(%dx%d)", len(s.durations), s.machines)
}

// Direction implements core.Problem.
func (*Scheduling) Direction() core.Direction { return core.Minimize }

// LowerBound returns the theoretical makespan lower bound.
func (s *Scheduling) LowerBound() float64 { return s.lower }

// NewGenome implements core.Problem.
func (s *Scheduling) NewGenome(r *rng.Source) core.Genome {
	return genome.RandomIntVector(len(s.durations), s.machines, r)
}

// Evaluate implements core.Problem: the makespan of the assignment.
func (s *Scheduling) Evaluate(g core.Genome) float64 {
	v := g.(*genome.IntVector)
	load := make([]float64, s.machines)
	for i, m := range v.Genes {
		load[m] += s.durations[i]
	}
	max := 0.0
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
