package apps

import (
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/rng"
)

func TestGraphPartitionInstance(t *testing.T) {
	g := NewGraphPartition(40, 0.5, 0.05, 1)
	if g.Edges() == 0 {
		t.Fatal("no edges generated")
	}
	// The planted partition's cut must be far below a random cut.
	r := rng.New(2)
	randomCut := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		randomCut += g.CutSize(g.NewGenome(r).(*genome.BitString))
	}
	if planted := g.PlantedCut(); planted*2 >= randomCut/trials {
		t.Fatalf("planted cut %d not clearly below random %d", planted, randomCut/trials)
	}
}

func TestGraphPartitionImbalancePenalty(t *testing.T) {
	g := NewGraphPartition(20, 0.4, 0.05, 3)
	all := genome.NewBitString(20) // everything on one side: zero cut, max imbalance
	if g.CutSize(all) != 0 {
		t.Fatal("one-sided partition has a cut")
	}
	if g.Imbalance(all) != 10 {
		t.Fatalf("imbalance %d", g.Imbalance(all))
	}
	// The degenerate solution must score worse than the planted one.
	planted := genome.BitStringFromBools(g.planted)
	if g.Evaluate(all) <= g.Evaluate(planted) {
		t.Fatal("imbalance penalty too weak: one-sided beats planted")
	}
}

func TestGraphPartitionPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGraphPartition(7, 0.5, 0.1, 1)
}

func TestGAFindsGoodPartition(t *testing.T) {
	g := NewGraphPartition(32, 0.5, 0.04, 5)
	e := ga.NewGenerational(ga.Config{
		Problem:   g,
		PopSize:   60,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(6),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(120)})
	// The GA should land within 2× of the planted cut with near balance.
	best := res.Best.Genome.(*genome.BitString)
	if g.Imbalance(best) > 2 {
		t.Fatalf("final partition imbalance %d", g.Imbalance(best))
	}
	if cut := g.CutSize(best); cut > 2*g.PlantedCut()+4 {
		t.Fatalf("GA cut %d far above planted %d", cut, g.PlantedCut())
	}
}

func TestCameraPlacementBasics(t *testing.T) {
	cp := NewCameraPlacement(4, 30, 7)
	r := rng.New(8)
	g := cp.NewGenome(r)
	f := cp.Evaluate(g)
	if f < 0 || f > 1 {
		t.Fatalf("camera fitness out of [0,1]: %v", f)
	}
	cov := cp.Coverage(g)
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage out of range: %v", cov)
	}
	if cp.Name() == "" || cp.Direction() != core.Maximize {
		t.Fatal("metadata wrong")
	}
}

func TestCameraPlacementClusteredCamerasAreBad(t *testing.T) {
	cp := NewCameraPlacement(4, 40, 9)
	// All cameras at the same point: no triangulation angle, poor score.
	clustered := cp.NewGenome(rng.New(10)).(*genome.RealVector)
	for c := 0; c < 4; c++ {
		clustered.Genes[2*c] = 0.3
		clustered.Genes[2*c+1] = 0.2
	}
	// Spread cameras: tetrahedral-ish spacing.
	spread := cp.NewGenome(rng.New(10)).(*genome.RealVector)
	angles := [][2]float64{{0, 0.6}, {2.1, -0.6}, {4.2, 0.6}, {1.0, -0.2}}
	for c, a := range angles {
		spread.Genes[2*c] = a[0]
		spread.Genes[2*c+1] = a[1]
	}
	if cp.Evaluate(spread) <= cp.Evaluate(clustered) {
		t.Fatalf("spread cameras (%v) not better than clustered (%v)",
			cp.Evaluate(spread), cp.Evaluate(clustered))
	}
}

func TestGAImprovesCameraNetwork(t *testing.T) {
	cp := NewCameraPlacement(4, 30, 11)
	r := rng.New(12)
	randomScore := 0.0
	for i := 0; i < 10; i++ {
		randomScore += cp.Evaluate(cp.NewGenome(r))
	}
	randomScore /= 10
	e := ga.NewGenerational(ga.Config{
		Problem:   cp,
		PopSize:   40,
		Crossover: operators.BLX{},
		Mutator:   operators.Gaussian{P: 0.3, Sigma: 0.3},
		RNG:       rng.New(13),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(60)})
	if res.BestFitness <= randomScore {
		t.Fatalf("GA (%v) did not beat random placement (%v)", res.BestFitness, randomScore)
	}
}
