package apps

import (
	"fmt"
	"math"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/rng"
)

// ImageRegistration is the Chalermwat (2001) / Fan (2002) workload: find
// the rigid transform (dx, dy, θ) that aligns a target image to a
// reference. The images are synthetic smooth fields; the target is the
// reference under a known ground-truth transform plus noise, so the
// optimum is known. Fitness is the negative sum of squared differences
// (maximised).
type ImageRegistration struct {
	size   int
	ref    []float64
	target []float64
	// truth is the ground-truth transform (dx, dy, theta).
	truth [3]float64
	// MaxShift bounds |dx|, |dy|; MaxAngle bounds |θ| (radians).
	MaxShift, MaxAngle float64
	// Downsample evaluates the SSD on every k-th pixel (the 2-phase
	// low-resolution trick of Chalermwat's first phase); 1 = full
	// resolution.
	Downsample int
}

// NewImageRegistration creates a size×size synthetic registration
// instance with a random ground-truth transform drawn from seed.
func NewImageRegistration(size int, seed uint64) *ImageRegistration {
	r := rng.New(seed)
	ir := &ImageRegistration{
		size:       size,
		MaxShift:   float64(size) / 8,
		MaxAngle:   0.5,
		Downsample: 1,
	}
	// Smooth random field: sum of a few random Gabor-ish blobs.
	type blob struct{ cx, cy, s, a float64 }
	blobs := make([]blob, 12)
	for i := range blobs {
		blobs[i] = blob{
			cx: r.Float64() * float64(size),
			cy: r.Float64() * float64(size),
			s:  float64(size) * (0.05 + 0.1*r.Float64()),
			a:  r.Range(-1, 1),
		}
	}
	field := func(x, y float64) float64 {
		v := 0.0
		for _, b := range blobs {
			dx, dy := x-b.cx, y-b.cy
			v += b.a * math.Exp(-(dx*dx+dy*dy)/(2*b.s*b.s))
		}
		return v
	}
	ir.ref = make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			ir.ref[y*size+x] = field(float64(x), float64(y))
		}
	}
	ir.truth = [3]float64{
		r.Range(-ir.MaxShift/2, ir.MaxShift/2),
		r.Range(-ir.MaxShift/2, ir.MaxShift/2),
		r.Range(-ir.MaxAngle/2, ir.MaxAngle/2),
	}
	// Target = reference sampled through the ground-truth transform, plus
	// mild noise.
	ir.target = make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			sx, sy := ir.apply(ir.truth, float64(x), float64(y))
			ir.target[y*size+x] = field(sx, sy) + 0.01*r.NormFloat64()
		}
	}
	return ir
}

// Truth returns the ground-truth transform.
func (ir *ImageRegistration) Truth() [3]float64 { return ir.truth }

// apply maps target coordinates through transform t into reference space:
// rotate about the image centre by θ then translate by (dx, dy).
func (ir *ImageRegistration) apply(t [3]float64, x, y float64) (float64, float64) {
	c := float64(ir.size) / 2
	cos, sin := math.Cos(t[2]), math.Sin(t[2])
	rx := cos*(x-c) - sin*(y-c) + c + t[0]
	ry := sin*(x-c) + cos*(y-c) + c + t[1]
	return rx, ry
}

// sample reads the reference with bilinear interpolation (0 outside).
func (ir *ImageRegistration) sample(img []float64, x, y float64) float64 {
	if x < 0 || y < 0 || x > float64(ir.size-1) || y > float64(ir.size-1) {
		return 0
	}
	x0, y0 := int(x), int(y)
	x1, y1 := x0+1, y0+1
	if x1 >= ir.size {
		x1 = x0
	}
	if y1 >= ir.size {
		y1 = y0
	}
	fx, fy := x-float64(x0), y-float64(y0)
	v00 := img[y0*ir.size+x0]
	v01 := img[y0*ir.size+x1]
	v10 := img[y1*ir.size+x0]
	v11 := img[y1*ir.size+x1]
	return v00*(1-fx)*(1-fy) + v01*fx*(1-fy) + v10*(1-fx)*fy + v11*fx*fy
}

// Name implements core.Problem.
func (ir *ImageRegistration) Name() string {
	return fmt.Sprintf("imgreg(%dx%d)", ir.size, ir.size)
}

// Direction implements core.Problem.
func (*ImageRegistration) Direction() core.Direction { return core.Maximize }

// NewGenome implements core.Problem: (dx, dy, θ) within bounds.
func (ir *ImageRegistration) NewGenome(r *rng.Source) core.Genome {
	v := genome.NewRealVector(3, 0, 1)
	v.Lo[0], v.Hi[0] = -ir.MaxShift, ir.MaxShift
	v.Lo[1], v.Hi[1] = -ir.MaxShift, ir.MaxShift
	v.Lo[2], v.Hi[2] = -ir.MaxAngle, ir.MaxAngle
	v.Genes[0] = r.Range(v.Lo[0], v.Hi[0])
	v.Genes[1] = r.Range(v.Lo[1], v.Hi[1])
	v.Genes[2] = r.Range(v.Lo[2], v.Hi[2])
	return v
}

// Evaluate implements core.Problem: negative SSD between the target and
// the reference warped by the candidate transform.
func (ir *ImageRegistration) Evaluate(g core.Genome) float64 {
	v := g.(*genome.RealVector)
	t := [3]float64{v.Genes[0], v.Genes[1], v.Genes[2]}
	step := ir.Downsample
	if step < 1 {
		step = 1
	}
	ssd := 0.0
	n := 0
	for y := 0; y < ir.size; y += step {
		for x := 0; x < ir.size; x += step {
			sx, sy := ir.apply(t, float64(x), float64(y))
			d := ir.target[y*ir.size+x] - ir.sample(ir.ref, sx, sy)
			ssd += d * d
			n++
		}
	}
	return -ssd / float64(n)
}

// TransformError returns the parameter-space distance between the
// candidate and the ground truth (shift in pixels + angle scaled).
func (ir *ImageRegistration) TransformError(g core.Genome) float64 {
	v := g.(*genome.RealVector)
	dx := v.Genes[0] - ir.truth[0]
	dy := v.Genes[1] - ir.truth[1]
	dt := (v.Genes[2] - ir.truth[2]) * float64(ir.size) / 4
	return math.Sqrt(dx*dx + dy*dy + dt*dt)
}
