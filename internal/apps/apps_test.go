package apps

import (
	"math"
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/rng"
)

func TestCircleTSPOptimum(t *testing.T) {
	tsp := NewCircleTSP(12)
	// The identity permutation is the optimal circular tour.
	ident := genome.IdentityPermutation(12)
	got := tsp.Evaluate(ident)
	if math.Abs(got-tsp.Optimum()) > 1e-9 {
		t.Fatalf("circle tour length %v, optimum %v", got, tsp.Optimum())
	}
	if !tsp.Solved(got) {
		t.Fatal("optimal tour not recognised as solved")
	}
}

func TestTSPRandomWorseThanOptimal(t *testing.T) {
	tsp := NewCircleTSP(24)
	r := rng.New(1)
	worse := 0
	for i := 0; i < 50; i++ {
		if tsp.Evaluate(tsp.NewGenome(r)) > tsp.Optimum()*1.01 {
			worse++
		}
	}
	if worse < 48 {
		t.Fatalf("random tours too good: only %d/50 worse than optimum", worse)
	}
}

func TestTSPTourLengthInvariantUnderRotation(t *testing.T) {
	tsp := NewRandomTSP(10, 2)
	r := rng.New(3)
	p := tsp.NewGenome(r).(*genome.Permutation)
	base := tsp.Evaluate(p)
	// Rotating a closed tour must not change its length.
	rot := &genome.Permutation{Perm: append(p.Perm[3:], p.Perm[:3]...)}
	if math.Abs(tsp.Evaluate(rot)-base) > 1e-9 {
		t.Fatal("tour length not rotation invariant")
	}
}

func TestTSPInstanceGenerators(t *testing.T) {
	if NewRandomTSP(30, 1).Cities() != 30 {
		t.Fatal("random size")
	}
	if NewClusteredTSP(30, 5, 1).Cities() != 30 {
		t.Fatal("clustered size")
	}
	// Deterministic per seed.
	a, b := NewRandomTSP(10, 7), NewRandomTSP(10, 7)
	g := genome.IdentityPermutation(10)
	if a.Evaluate(g) != b.Evaluate(g) {
		t.Fatal("instance not seed-deterministic")
	}
}

func TestGASolvesCircleTSP(t *testing.T) {
	tsp := NewCircleTSP(10)
	e := ga.NewGenerational(ga.Config{
		Problem:   tsp,
		PopSize:   80,
		Crossover: operators.OX{},
		Mutator:   operators.Inversion{},
		RNG:       rng.New(4),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.AnyOf{
		core.MaxGenerations(200),
		core.TargetFitness{Target: tsp.Optimum() * 1.001, Dir: core.Minimize},
	}})
	if !tsp.Solved(res.BestFitness) {
		t.Fatalf("GA failed circle TSP: %v vs optimum %v", res.BestFitness, tsp.Optimum())
	}
}

func TestSchedulingBounds(t *testing.T) {
	s := NewScheduling(50, 5, 1)
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		f := s.Evaluate(s.NewGenome(r))
		if f < s.LowerBound() {
			t.Fatalf("makespan %v below lower bound %v", f, s.LowerBound())
		}
	}
}

func TestSchedulingAllOnOneMachineIsWorst(t *testing.T) {
	s := NewScheduling(20, 4, 2)
	all0 := genome.NewIntVector(20, 4) // all tasks on machine 0
	worst := s.Evaluate(all0)
	r := rng.New(6)
	for i := 0; i < 30; i++ {
		if s.Evaluate(s.NewGenome(r)) > worst {
			t.Fatal("random assignment worse than all-on-one")
		}
	}
}

func TestGAImprovesScheduling(t *testing.T) {
	s := NewScheduling(60, 6, 3)
	e := ga.NewGenerational(ga.Config{
		Problem:   s,
		PopSize:   60,
		Crossover: operators.Uniform{},
		Mutator:   operators.UniformReset{P: 0.05},
		RNG:       rng.New(7),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(80)})
	// GA should land within 15% of the lower bound on this easy instance.
	if res.BestFitness > s.LowerBound()*1.15 {
		t.Fatalf("GA makespan %v too far above lower bound %v", res.BestFitness, s.LowerBound())
	}
}

func TestFeatureSelectionInformativeBeatsNoise(t *testing.T) {
	fs := NewFeatureSelection(30, 5, 3, 20, 8)
	informative := fs.InformativeMask()
	accInf := fs.Accuracy(informative)
	// Noise-only mask.
	noise := genome.NewBitString(30)
	for f := 5; f < 10; f++ {
		noise.Set(f, true)
	}
	accNoise := fs.Accuracy(noise)
	if accInf <= accNoise {
		t.Fatalf("informative features (%v) not better than noise (%v)", accInf, accNoise)
	}
	if accInf < 0.8 {
		t.Fatalf("informative accuracy only %v", accInf)
	}
}

func TestFeatureSelectionParsimony(t *testing.T) {
	fs := NewFeatureSelection(30, 5, 3, 20, 9)
	full := genome.NewBitString(30)
	for i := 0; i < full.Len(); i++ {
		full.Set(i, true)
	}
	inf := fs.InformativeMask()
	// With equal-ish accuracy, the smaller subset must score higher.
	if fs.Evaluate(inf) <= fs.Evaluate(full)-0.01 {
		t.Fatalf("parsimony not rewarded: informative %v vs full %v", fs.Evaluate(inf), fs.Evaluate(full))
	}
	// Empty mask scores zero.
	if fs.Evaluate(genome.NewBitString(30)) != 0 {
		t.Fatal("empty mask not zero")
	}
}

func TestFeatureSelectionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewFeatureSelection(5, 10, 2, 5, 1)
}

func TestGAFindsInformativeFeatures(t *testing.T) {
	fs := NewFeatureSelection(24, 4, 3, 15, 10)
	e := ga.NewGenerational(ga.Config{
		Problem:   fs,
		PopSize:   50,
		Crossover: operators.Uniform{},
		Mutator:   operators.BitFlip{},
		RNG:       rng.New(11),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(60)})
	target := fs.Evaluate(fs.InformativeMask())
	if res.BestFitness < target-0.05 {
		t.Fatalf("GA fitness %v well below informative-mask fitness %v", res.BestFitness, target)
	}
}

func TestImageRegistrationTruthIsNearOptimal(t *testing.T) {
	ir := NewImageRegistration(32, 12)
	truth := genome.NewRealVector(3, 0, 1)
	truth.Lo[0], truth.Hi[0] = -ir.MaxShift, ir.MaxShift
	truth.Lo[1], truth.Hi[1] = -ir.MaxShift, ir.MaxShift
	truth.Lo[2], truth.Hi[2] = -ir.MaxAngle, ir.MaxAngle
	tt := ir.Truth()
	copy(truth.Genes, tt[:])
	fTruth := ir.Evaluate(truth)
	r := rng.New(13)
	better := 0
	for i := 0; i < 30; i++ {
		if ir.Evaluate(ir.NewGenome(r)) > fTruth {
			better++
		}
	}
	if better > 1 {
		t.Fatalf("%d/30 random transforms beat the ground truth", better)
	}
	if ir.TransformError(truth) > 1e-9 {
		t.Fatal("truth transform has nonzero error")
	}
}

func TestImageRegistrationDownsampleConsistent(t *testing.T) {
	ir := NewImageRegistration(32, 14)
	r := rng.New(15)
	g := ir.NewGenome(r)
	full := ir.Evaluate(g)
	ir.Downsample = 4
	coarse := ir.Evaluate(g)
	ir.Downsample = 1
	// Same order of magnitude: the coarse score approximates the full one.
	if full == 0 || coarse == 0 {
		t.Fatal("degenerate SSD")
	}
	if math.Abs(full-coarse) > math.Abs(full)*0.8+0.05 {
		t.Fatalf("downsampled SSD uncorrelated: full=%v coarse=%v", full, coarse)
	}
}

func TestGARegistersImage(t *testing.T) {
	ir := NewImageRegistration(24, 16)
	ir.Downsample = 2
	e := ga.NewGenerational(ga.Config{
		Problem:   ir,
		PopSize:   60,
		Crossover: operators.BLX{},
		Mutator:   operators.Gaussian{P: 0.5, Sigma: 0.3},
		RNG:       rng.New(17),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(60)})
	if err := ir.TransformError(res.Best.Genome); err > 1.5 {
		t.Fatalf("registration error %v pixels", err)
	}
}

func TestStockPredictionBaselines(t *testing.T) {
	sp := NewStockPrediction(400, 5, 4, 18)
	if sp.WeightCount() != 5*4+4+4+1 {
		t.Fatalf("weight count %d", sp.WeightCount())
	}
	r := rng.New(19)
	g := sp.NewGenome(r)
	if sp.Evaluate(g) <= 0 {
		t.Fatal("MSE not positive")
	}
	if sp.BuyAndHoldMSE() <= 0 {
		t.Fatal("baseline MSE not positive")
	}
}

func TestGABeatsBuyAndHold(t *testing.T) {
	// Kwon & Moon's qualitative claim: the neuro-genetic predictor beats
	// the naive baseline (here: on training fit and usually held-out too).
	sp := NewStockPrediction(400, 5, 4, 20)
	e := ga.NewGenerational(ga.Config{
		Problem:   sp,
		PopSize:   60,
		Crossover: operators.BLX{},
		Mutator:   operators.Gaussian{P: 0.2, Sigma: 0.2},
		RNG:       rng.New(21),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(80)})
	test := sp.TestMSE(res.Best.Genome)
	naive := sp.BuyAndHoldMSE()
	if test > naive*1.05 {
		t.Fatalf("neuro-genetic test MSE %v worse than buy&hold %v", test, naive)
	}
}

func TestSpectralEstimationTruthOptimal(t *testing.T) {
	se := NewSpectralEstimation(500, 22)
	truth := genome.NewRealVector(2, -2, 2)
	tt := se.Truth()
	copy(truth.Genes, tt[:])
	fTruth := se.Evaluate(truth)
	r := rng.New(23)
	for i := 0; i < 30; i++ {
		if se.Evaluate(se.NewGenome(r)) < fTruth*0.95 {
			t.Fatal("random coefficients beat the generator")
		}
	}
	if se.CoefficientError(truth) != 0 {
		t.Fatal("truth has nonzero coefficient error")
	}
}

func TestGARecoversARCoefficients(t *testing.T) {
	se := NewSpectralEstimation(500, 24)
	e := ga.NewGenerational(ga.Config{
		Problem:   se,
		PopSize:   40,
		Crossover: operators.SBX{},
		Mutator:   operators.Polynomial{},
		RNG:       rng.New(25),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(60)})
	if err := se.CoefficientError(res.Best.Genome); err > 0.1 {
		t.Fatalf("AR coefficient error %v", err)
	}
}

func TestReactorCoreUniformLoadingNearFlat(t *testing.T) {
	rc := NewReactorCore(7, 3, 26)
	uniform := genome.NewIntVector(49, 3)
	for i := range uniform.Genes {
		uniform.Genes[i] = 1
	}
	pf := rc.PeakFactor(uniform)
	if pf < 1 {
		t.Fatalf("peak factor %v below 1", pf)
	}
	// Uniform enrichment still peaks at the centre (importance-driven).
	if pf > 2.5 {
		t.Fatalf("uniform loading peak factor implausible: %v", pf)
	}
	if rc.ReactivityExcess(uniform) != 0 {
		t.Fatal("mid-class uniform loading should be critical")
	}
}

func TestReactorCoreGAFlattensPower(t *testing.T) {
	rc := NewReactorCore(7, 3, 27)
	uniform := genome.NewIntVector(49, 3)
	for i := range uniform.Genes {
		uniform.Genes[i] = 1
	}
	base := rc.Evaluate(uniform)
	e := ga.NewGenerational(ga.Config{
		Problem:   rc,
		PopSize:   60,
		Crossover: operators.TwoPoint{},
		Mutator:   operators.UniformReset{P: 0.03},
		RNG:       rng.New(28),
	})
	res := ga.Run(e, ga.RunOptions{Stop: core.MaxGenerations(120)})
	// The GA loads low enrichment in the centre, flattening power below
	// the uniform loading (Pereira's optimisation outcome).
	if res.BestFitness >= base {
		t.Fatalf("GA (%v) did not beat uniform loading (%v)", res.BestFitness, base)
	}
}

func TestAppProblemsMetadata(t *testing.T) {
	ps := []core.Problem{
		NewRandomTSP(8, 1), NewCircleTSP(8), NewClusteredTSP(8, 2, 1),
		NewScheduling(8, 2, 1), NewFeatureSelection(8, 2, 2, 5, 1),
		NewImageRegistration(16, 1), NewStockPrediction(100, 3, 2, 1),
		NewSpectralEstimation(100, 1), NewReactorCore(5, 2, 1),
	}
	r := rng.New(29)
	for _, p := range ps {
		if p.Name() == "" {
			t.Fatalf("%T empty name", p)
		}
		g := p.NewGenome(r)
		f := p.Evaluate(g)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("%s produced non-finite fitness", p.Name())
		}
	}
}
