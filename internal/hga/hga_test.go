package hga

import (
	"testing"

	"pga/internal/core"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

func quantized() *QuantizedFidelity {
	return NewQuantized(problems.Rastrigin(6))
}

func cfg(seed uint64) Config {
	return Config{
		Problem:   quantized(),
		DemeSize:  24,
		Crossover: operators.SBX{},
		Mutator:   operators.Polynomial{},
		Seed:      seed,
	}
}

func TestQuantizedLevels(t *testing.T) {
	q := quantized()
	if q.Levels() != 3 {
		t.Fatalf("levels %d", q.Levels())
	}
	if q.CostAt(0) != 1 || q.CostAt(2) >= q.CostAt(1) {
		t.Fatal("costs not decreasing")
	}
	if q.Direction() != core.Minimize || q.Name() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestQuantizedLevel0IsExact(t *testing.T) {
	q := quantized()
	r := rng.New(1)
	g := q.NewGenome(r)
	if q.EvaluateAt(0, g) != q.Inner.Evaluate(g) {
		t.Fatal("level 0 differs from precise model")
	}
	if q.Evaluate(g) != q.EvaluateAt(0, g) {
		t.Fatal("Evaluate is not level 0")
	}
}

func TestQuantizedCoarseLevelsCorrelated(t *testing.T) {
	q := quantized()
	r := rng.New(2)
	// Coarse model values should be close to precise ones (same landscape,
	// snapped inputs).
	for i := 0; i < 50; i++ {
		g := q.NewGenome(r)
		precise := q.EvaluateAt(0, g)
		coarse := q.EvaluateAt(2, g)
		if coarse < 0 {
			t.Fatal("coarse rastrigin negative")
		}
		if precise > 150 && coarse < 10 {
			t.Fatalf("coarse model uncorrelated: precise=%v coarse=%v", precise, coarse)
		}
	}
}

func TestQuantizedDiffersAtCoarseLevel(t *testing.T) {
	q := quantized()
	r := rng.New(3)
	differs := false
	for i := 0; i < 20; i++ {
		g := q.NewGenome(r)
		if q.EvaluateAt(0, g) != q.EvaluateAt(2, g) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("coarse level identical to precise on all samples")
	}
}

func TestQuantizedSolvedAtOptimum(t *testing.T) {
	q := quantized()
	v := genome.NewRealVector(6, q.Inner.Lo, q.Inner.Hi) // all zeros = optimum
	if !q.Solved(q.Evaluate(v)) {
		t.Fatal("optimum not recognised")
	}
}

func TestHGAStructure(t *testing.T) {
	m := New(cfg(1))
	if m.Demes() != 7 { // 1 + 2 + 4
		t.Fatalf("demes %d, want 7", m.Demes())
	}
	// Layer and parent invariants.
	if m.parent[0] != -1 {
		t.Fatal("top deme has a parent")
	}
	for i := 1; i < m.Demes(); i++ {
		p := m.parent[i]
		if p < 0 || p >= m.Demes() {
			t.Fatalf("deme %d parent %d out of range", i, p)
		}
		if m.layerOf[p] != m.layerOf[i]-1 {
			t.Fatalf("deme %d (layer %d) parent %d on layer %d", i, m.layerOf[i], p, m.layerOf[p])
		}
	}
}

func TestHGAReducesCostPerEvaluation(t *testing.T) {
	m := New(cfg(2))
	res := m.Run(5000)
	if res.Cost > 5000*1.2 {
		t.Fatalf("cost budget overrun: %v", res.Cost)
	}
	// Mixed levels: raw evaluations must exceed cost units (cheap levels
	// cost < 1 each).
	if float64(res.Evaluations) <= res.Cost {
		t.Fatalf("evaluations %d not greater than cost %v (no cheap levels used?)", res.Evaluations, res.Cost)
	}
}

func TestHGAPreciseOnlyBaselineCostsMore(t *testing.T) {
	// Same structure, all layers precise: every evaluation costs 1.
	c := cfg(3)
	c.LevelOf = []int{0, 0, 0}
	m := New(c)
	res := m.Run(3000)
	if float64(res.Evaluations) != res.Cost {
		t.Fatalf("precise-only: evals %d != cost %v", res.Evaluations, res.Cost)
	}
}

func TestHGAImprovesWithBudget(t *testing.T) {
	small := New(cfg(4)).Run(1000)
	large := New(cfg(4)).Run(20000)
	if large.BestFitness > small.BestFitness {
		t.Fatalf("more budget worsened quality: %v vs %v", large.BestFitness, small.BestFitness)
	}
}

func TestHGADeterministic(t *testing.T) {
	a := New(cfg(5)).Run(2000)
	b := New(cfg(5)).Run(2000)
	if a.BestFitness != b.BestFitness || a.Evaluations != b.Evaluations {
		t.Fatal("HGA not deterministic per seed")
	}
}

func TestHGAMixedBeatsPreciseAtEqualCost(t *testing.T) {
	// E8's shape: at the same cost budget, the mixed hierarchy should do
	// at least as well (usually better) than precise-only. Averaged over
	// seeds to damp noise.
	const budget = 4000
	const runs = 3
	var mixed, precise float64
	for s := uint64(0); s < runs; s++ {
		mixed += New(cfg(100 + s)).Run(budget).BestFitness
		c := cfg(100 + s)
		c.LevelOf = []int{0, 0, 0}
		precise += New(c).Run(budget).BestFitness
	}
	mixed /= runs
	precise /= runs
	// Minimisation: mixed must not be dramatically worse.
	if mixed > precise*1.5+1 {
		t.Fatalf("mixed hierarchy much worse at equal cost: mixed=%v precise=%v", mixed, precise)
	}
}

func TestHGAValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic without problem")
			}
		}()
		New(Config{})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic on mismatched LevelOf")
			}
		}()
		c := cfg(1)
		c.LevelOf = []int{0}
		New(c)
	}()
}
