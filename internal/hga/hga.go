// Package hga implements the Hierarchical Genetic Algorithm of Sefrioui &
// Périaux (2000), reviewed in §2 of the survey: a multi-layered topology
// of demes where each layer evaluates with a different fitness model —
// cheap, imprecise models in the lower layers explore broadly, while the
// precise, expensive model at the top refines. Individuals are promoted
// upward when good and diversity flows back down.
//
// The survey's claim to reproduce (E8): the mixed-model hierarchy reaches
// the same solution quality as a precise-model-only configuration at about
// one third of the evaluation cost.
package hga

import (
	"fmt"
	"math"
	"time"

	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
)

// MultiFidelity is a problem that can be evaluated at several fidelity
// levels. Level 0 is the precise (expensive) model; higher levels are
// cheaper and less accurate.
type MultiFidelity interface {
	core.Problem // Evaluate is the level-0 (precise) model
	// Levels returns the number of fidelity levels.
	Levels() int
	// EvaluateAt evaluates g with the model at the given level.
	EvaluateAt(level int, g core.Genome) float64
	// CostAt returns the relative cost of one evaluation at the level
	// (level 0 = 1.0 by convention).
	CostAt(level int) float64
}

// QuantizedFidelity wraps a real-valued problem into a multi-fidelity one
// by evaluating on a coarsened input grid: level k snaps every coordinate
// to a grid of 2^(bits-2k) points, which is deterministic, strongly
// correlated with the precise model, and progressively blurs fine
// structure — the behaviour of the simplified aerodynamic models in the
// original HGA work (substitution documented in DESIGN.md).
type QuantizedFidelity struct {
	// Inner is the precise model.
	Inner *problems.RealFunc
	// LevelCosts[k] is the relative cost of level k; LevelCosts[0] must
	// be 1. The default is {1, 0.25, 0.0625}.
	LevelCosts []float64
	// BaseBits is the grid resolution exponent at level 0; default 20.
	BaseBits int
}

// NewQuantized returns a 3-level quantized fidelity hierarchy over inner.
func NewQuantized(inner *problems.RealFunc) *QuantizedFidelity {
	return &QuantizedFidelity{Inner: inner, LevelCosts: []float64{1, 0.25, 0.0625}, BaseBits: 20}
}

// Name implements core.Problem.
func (q *QuantizedFidelity) Name() string { return q.Inner.Name() + "-mf" }

// Direction implements core.Problem.
func (q *QuantizedFidelity) Direction() core.Direction { return q.Inner.Direction() }

// NewGenome implements core.Problem.
func (q *QuantizedFidelity) NewGenome(r *rng.Source) core.Genome { return q.Inner.NewGenome(r) }

// Evaluate implements core.Problem (precise model).
func (q *QuantizedFidelity) Evaluate(g core.Genome) float64 { return q.EvaluateAt(0, g) }

// Optimum implements core.TargetAware.
func (q *QuantizedFidelity) Optimum() float64 { return q.Inner.Optimum() }

// Solved implements core.TargetAware.
func (q *QuantizedFidelity) Solved(f float64) bool { return q.Inner.Solved(f) }

// Levels implements MultiFidelity.
func (q *QuantizedFidelity) Levels() int { return len(q.LevelCosts) }

// CostAt implements MultiFidelity.
func (q *QuantizedFidelity) CostAt(level int) float64 { return q.LevelCosts[level] }

// EvaluateAt implements MultiFidelity.
func (q *QuantizedFidelity) EvaluateAt(level int, g core.Genome) float64 {
	v := g.(*genome.RealVector)
	if level == 0 {
		return q.Inner.F(v.Genes)
	}
	bits := q.baseBits() - 6*level
	if bits < 2 {
		bits = 2
	}
	steps := math.Exp2(float64(bits))
	x := make([]float64, len(v.Genes))
	for i, gv := range v.Genes {
		lo, hi := v.Lo[i], v.Hi[i]
		t := (gv - lo) / (hi - lo)
		t = math.Round(t*steps) / steps
		x[i] = lo + t*(hi-lo)
	}
	return q.Inner.F(x)
}

func (q *QuantizedFidelity) baseBits() int {
	if q.BaseBits <= 0 {
		return 20
	}
	return q.BaseBits
}

// Config describes an HGA run.
type Config struct {
	// Problem is the multi-fidelity problem (required).
	Problem MultiFidelity
	// LayerSizes[l] is the number of demes on layer l; layer 0 is the
	// top (precise) layer. Default {1, 2, 4}.
	LayerSizes []int
	// LevelOf maps layer → fidelity level. By default layer l uses
	// level min(l, Levels-1). Setting all entries to 0 yields the
	// "precise-only" baseline of the E8 comparison.
	LevelOf []int
	// DemeSize is the population per deme; default 30.
	DemeSize int
	// MigrationInterval is the generations between promotions; default 5.
	MigrationInterval int
	// Selector, Crossover, Mutator configure every deme's engine.
	Selector  operators.Selector
	Crossover operators.Crossover
	Mutator   operators.Mutator
	// Seed seeds the master stream.
	Seed uint64
}

// layerProblem evaluates at a fixed fidelity level and accumulates cost.
type layerProblem struct {
	mf    MultiFidelity
	level int
	cost  *float64
	evals *int64
}

func (p *layerProblem) Name() string              { return fmt.Sprintf("%s@L%d", p.mf.Name(), p.level) }
func (p *layerProblem) Direction() core.Direction { return p.mf.Direction() }
func (p *layerProblem) NewGenome(r *rng.Source) core.Genome {
	return p.mf.NewGenome(r)
}

//pgalint:ignore purity cost/evals accounting adapter: each deme owns its layerProblem, and the pointees are aggregated only after Run joins every deme
func (p *layerProblem) Evaluate(g core.Genome) float64 {
	*p.cost += p.mf.CostAt(p.level)
	*p.evals++
	return p.mf.EvaluateAt(p.level, g)
}

// Result summarises an HGA run. The embedded core.RunStats holds the
// accounting common to every runtime: BestFitness is the best
// precise-model fitness reached (the final best of every deme is
// re-scored with the precise model), and Evaluations counts raw
// evaluations at any fidelity level (Cost weighs them by level).
type Result struct {
	core.RunStats
	// Cost is the accumulated evaluation cost in precise-evaluation units.
	Cost float64
	// CostAtSolve is the accumulated cost when first solved.
	CostAtSolve float64
}

// Model is an instantiated hierarchy.
type Model struct {
	cfg     Config
	demes   []ga.Engine // flattened layer by layer
	layerOf []int
	parent  []int // deme index of parent (-1 for top layer)
	migRNG  *rng.Source
	cost    float64
	evals   int64
	dir     core.Direction
}

// New builds the hierarchy.
func New(cfg Config) *Model {
	if cfg.Problem == nil {
		panic("hga: Config.Problem is required")
	}
	if cfg.LayerSizes == nil {
		cfg.LayerSizes = []int{1, 2, 4}
	}
	if cfg.DemeSize == 0 {
		cfg.DemeSize = 30
	}
	if cfg.MigrationInterval == 0 {
		cfg.MigrationInterval = 5
	}
	if cfg.Selector == nil {
		cfg.Selector = operators.Tournament{K: 2}
	}
	if cfg.LevelOf == nil {
		cfg.LevelOf = make([]int, len(cfg.LayerSizes))
		for l := range cfg.LevelOf {
			lev := l
			if lev >= cfg.Problem.Levels() {
				lev = cfg.Problem.Levels() - 1
			}
			cfg.LevelOf[l] = lev
		}
	}
	if len(cfg.LevelOf) != len(cfg.LayerSizes) {
		panic("hga: LevelOf and LayerSizes must have equal length")
	}

	m := &Model{cfg: cfg, dir: cfg.Problem.Direction()}
	master := rng.New(cfg.Seed)
	m.migRNG = master.Split()
	for l, size := range cfg.LayerSizes {
		for d := 0; d < size; d++ {
			lp := &layerProblem{mf: cfg.Problem, level: cfg.LevelOf[l], cost: &m.cost, evals: &m.evals}
			engine := ga.NewGenerational(ga.Config{
				Problem:   lp,
				PopSize:   cfg.DemeSize,
				Selector:  cfg.Selector,
				Crossover: cfg.Crossover,
				Mutator:   cfg.Mutator,
				RNG:       master.Split(),
			})
			m.layerOf = append(m.layerOf, l)
			m.demes = append(m.demes, engine)
		}
	}
	// Parent pointers: deme d on layer l>0 attaches to a parent on layer
	// l-1, children distributed evenly.
	m.parent = make([]int, len(m.demes))
	layerStart := make([]int, len(cfg.LayerSizes))
	for l := 1; l < len(cfg.LayerSizes); l++ {
		layerStart[l] = layerStart[l-1] + cfg.LayerSizes[l-1]
	}
	for i := range m.demes {
		l := m.layerOf[i]
		if l == 0 {
			m.parent[i] = -1
			continue
		}
		posInLayer := i - layerStart[l]
		parentLayerSize := cfg.LayerSizes[l-1]
		m.parent[i] = layerStart[l-1] + posInLayer*parentLayerSize/cfg.LayerSizes[l]
	}
	return m
}

// Demes returns the total deme count.
func (m *Model) Demes() int { return len(m.demes) }

// Cost returns the accumulated evaluation cost so far.
func (m *Model) Cost() float64 { return m.cost }

// promote performs the hierarchical exchange: every non-top deme sends a
// clone of its best to its parent (accepted if better than the parent's
// worst, re-scored with the parent's model), and every parent sends a
// random individual down to each child to maintain diversity.
func (m *Model) promote() {
	for i, e := range m.demes {
		p := m.parent[i]
		if p < 0 {
			continue
		}
		pop := e.Population()
		if b := pop.Best(m.dir); b >= 0 {
			up := pop.Members[b].Clone()
			// Re-score with the parent's fidelity model.
			parentLevel := m.cfg.LevelOf[m.layerOf[p]]
			up.Fitness = m.cfg.Problem.EvaluateAt(parentLevel, up.Genome)
			m.cost += m.cfg.Problem.CostAt(parentLevel)
			m.evals++
			up.Evaluated = true
			ppop := m.demes[p].Population()
			if w := ppop.Worst(m.dir); w >= 0 && m.dir.Better(up.Fitness, ppop.Members[w].Fitness) {
				ppop.Replace(w, up)
			}
		}
		// Downward diversity: a random parent individual replaces a random
		// non-best child individual, re-scored with the child's model.
		ppop := m.demes[p].Population()
		down := ppop.Members[m.migRNG.Intn(ppop.Len())].Clone()
		childLevel := m.cfg.LevelOf[m.layerOf[i]]
		down.Fitness = m.cfg.Problem.EvaluateAt(childLevel, down.Genome)
		m.cost += m.cfg.Problem.CostAt(childLevel)
		m.evals++
		down.Evaluated = true
		if pop.Len() >= 2 {
			v := m.migRNG.Intn(pop.Len())
			if v == pop.Best(m.dir) {
				v = (v + 1) % pop.Len()
			}
			pop.Replace(v, down)
		}
	}
}

// costCap stops the hierarchy when the accumulated evaluation cost
// reaches the budget (the status snapshot has no cost notion, so the
// condition reads the model directly).
type costCap struct {
	m      *Model
	budget float64
}

// Done implements core.StopCondition.
func (c costCap) Done(core.Status) bool { return c.m.cost >= c.budget }

// Reason implements core.StopCondition.
func (c costCap) Reason() string { return "cost budget exhausted" }

// hierStepper is the hierarchy's engine.Stepper: one generation steps
// every deme, then promotes on schedule. Best() reports the top layer's
// best only when that layer evaluates with the precise model — quality on
// cheaper models is not comparable, so the loop tracks nothing otherwise
// and the final re-scoring fills the result in.
type hierStepper struct{ m *Model }

// Step implements engine.Stepper.
func (s *hierStepper) Step(gen int) engine.StepInfo {
	for _, e := range s.m.demes {
		e.Step()
	}
	if gen%s.m.cfg.MigrationInterval == 0 {
		s.m.promote()
	}
	return engine.StepInfo{}
}

// Best implements engine.Stepper.
func (s *hierStepper) Best() (*core.Individual, float64) {
	m := s.m
	if m.cfg.LevelOf[0] != 0 {
		return nil, m.dir.Worst()
	}
	pop := m.demes[0].Population()
	if b := pop.Best(m.dir); b >= 0 {
		return pop.Members[b], pop.Members[b].Fitness
	}
	return nil, m.dir.Worst()
}

// Evaluations implements engine.Stepper.
func (s *hierStepper) Evaluations() int64 { return s.m.evals }

// Direction implements engine.Stepper.
func (s *hierStepper) Direction() core.Direction { return s.m.dir }

// Run advances the hierarchy until the cost budget is exhausted or the
// precise optimum is found.
func (m *Model) Run(costBudget float64) *Result {
	start := time.Now()
	res := &Result{}
	ta, _ := core.Problem(m.cfg.Problem).(core.TargetAware)

	engine.Loop(&hierStepper{m: m}, engine.Options{
		Stop:        costCap{m: m, budget: costBudget},
		Target:      ta,
		HaltOnSolve: true,
	}, &res.RunStats)
	if res.Solved {
		// The loop halted the moment the target was reached, so the
		// accumulated cost still reads the solve instant.
		res.CostAtSolve = m.cost
	}

	// Final precise re-scoring of every deme's best.
	for _, e := range m.demes {
		pop := e.Population()
		if b := pop.Best(m.dir); b >= 0 {
			precise := m.cfg.Problem.EvaluateAt(0, pop.Members[b].Genome)
			if m.dir.Better(precise, res.BestFitness) {
				res.BestFitness = precise
				res.Best = pop.Members[b].Clone()
				res.Best.Fitness = precise
			}
		}
	}
	if ta != nil && !res.Solved && ta.Solved(res.BestFitness) {
		res.Solved = true
		res.CostAtSolve = m.cost
	}
	res.Cost = m.cost
	// Re-stamp so Elapsed includes the final re-scoring pass.
	res.Elapsed = time.Since(start)
	return res
}
