package genome

import (
	"math/bits"
	"testing"
)

// FuzzBitStringOps drives a packed BitString and a naive []bool
// reference model through the same randomized op sequence and demands
// they never disagree. The op stream is a tiny byte-code: each step
// decodes an operation plus operands from the fuzz input, applies it to
// both representations, and checks the observable result and the
// tail-mask invariant (bits at positions >= N in the final word stay
// zero — the contract every whole-word fast path relies on). Lengths
// are folded into [1, 200], which covers the empty-tail (n%64 == 0),
// one-word, word-boundary (64/65) and multi-word shapes; the seed
// corpus pins those boundaries plus word-straddling Uint windows.
func FuzzBitStringOps(f *testing.F) {
	straddle := []byte{
		5, 60, 70, 0xAB, 0xCD, // SetUint across the word 0/1 boundary
		4, 60, 70, // Uint over the same window
		3, 0, 129, // OnesCountRange spanning all three words
		1, 63, 1, 64, // Flip both sides of the boundary
	}
	f.Add(uint16(64), []byte{0, 63, 1, 2, 63, 3, 0, 64})
	f.Add(uint16(65), straddle)
	f.Add(uint16(128), straddle)
	f.Add(uint16(130), straddle)
	f.Add(uint16(1), []byte{0, 0, 1, 1, 0, 2, 0, 0})

	f.Fuzz(func(t *testing.T, rawN uint16, prog []byte) {
		n := int(rawN)%200 + 1
		b := NewBitString(n)
		model := make([]bool, n)

		// next decodes one operand byte, zero when the program runs dry.
		pc := 0
		next := func() int {
			if pc >= len(prog) {
				return 0
			}
			v := int(prog[pc])
			pc++
			return v
		}
		// index folds an operand into a valid gene index.
		index := func() int { return next() % n }
		// window folds two operands into a range [lo, hi) with hi-lo <= 64.
		window := func() (int, int) {
			lo := next() % (n + 1)
			width := next() % 65
			hi := lo + width
			if hi > n {
				hi = n
			}
			return lo, hi
		}
		modelUint := func(lo, hi int) uint64 {
			var v uint64
			for i := lo; i < hi; i++ {
				v <<= 1
				if model[i] {
					v |= 1
				}
			}
			return v
		}

		for step := 0; pc < len(prog); step++ {
			switch op := next() % 6; op {
			case 0: // Set
				i, v := index(), next()&1 == 1
				b.Set(i, v)
				model[i] = v
			case 1: // Flip
				i := index()
				b.Flip(i)
				model[i] = !model[i]
			case 2: // Get
				i := index()
				if got := b.Get(i); got != model[i] {
					t.Fatalf("step %d: Get(%d) = %v, model %v (n=%d)", step, i, got, model[i], n)
				}
			case 3: // OnesCountRange
				lo, hi := window()
				want := 0
				for i := lo; i < hi; i++ {
					if model[i] {
						want++
					}
				}
				if got := b.OnesCountRange(lo, hi); got != want {
					t.Fatalf("step %d: OnesCountRange(%d, %d) = %d, model %d (n=%d)", step, lo, hi, got, want, n)
				}
			case 4: // Uint
				lo, hi := window()
				if got, want := b.Uint(lo, hi), modelUint(lo, hi); got != want {
					t.Fatalf("step %d: Uint(%d, %d) = %d, model %d (n=%d)", step, lo, hi, got, want, n)
				}
			case 5: // SetUint
				lo, hi := window()
				v := uint64(next()) | uint64(next())<<8 | uint64(next())<<16 | uint64(next())<<56
				b.SetUint(lo, hi, v)
				for i := hi - 1; i >= lo; i-- {
					model[i] = v&1 == 1
					v >>= 1
				}
			}
			if tail := b.Words[len(b.Words)-1] &^ TailMask(n); tail != 0 {
				t.Fatalf("step %d: tail-mask invariant broken, stray bits %064b (n=%d)", step, tail, n)
			}
		}

		// Final full-state cross-checks: every gene, the whole-word
		// popcount, and the wire-format round trip.
		ones := 0
		for i, v := range model {
			if b.Get(i) != v {
				t.Fatalf("final: gene %d is %v, model %v (n=%d)", i, b.Get(i), v, n)
			}
			if v {
				ones++
			}
		}
		if got := b.OnesCount(); got != ones {
			t.Fatalf("final: OnesCount = %d, model %d (n=%d)", got, ones, n)
		}
		var sum int
		for _, w := range b.Words {
			sum += bits.OnesCount64(w)
		}
		if sum != ones {
			t.Fatalf("final: raw word popcount %d disagrees with model %d (n=%d)", sum, ones, n)
		}
		if rt := BitStringFromBools(b.ToBools()); !rt.Equal(b) {
			t.Fatalf("final: ToBools/FromBools round trip diverged (n=%d)", n)
		}
	})
}
