// Package genome provides the concrete chromosome representations used by
// the library: binary strings (with optional Gray decoding), real-valued
// vectors, bounded integer vectors and permutations.
//
// The survey's reviewed systems span all four: binary strings are the
// classic Goldberg/Holland encoding, real vectors cover the ARGA-style
// real-coded algorithms (Oyama 2000), integer vectors cover assignment
// problems such as reactor-core loading (Pereira 2003), and permutations
// cover routing/scheduling (TSP, Sena 2001).
package genome

import (
	"fmt"
	"math/bits"
	"strings"

	"pga/internal/core"
	"pga/internal/rng"
)

// Compile-time interface checks: every representation supports both the
// allocating Clone and the in-place CopyFrom used by the engines' pooled
// generation buffers.
var (
	_ core.InPlace = (*BitString)(nil)
	_ core.InPlace = (*RealVector)(nil)
	_ core.InPlace = (*IntVector)(nil)
	_ core.InPlace = (*Permutation)(nil)
)

// BitString is a fixed-length binary chromosome stored as a packed
// bitset: gene i lives in Words[i/64] at bit position i%64 (LSB-first
// within a word). The unused high bits of the final word are always
// zero — the tail-mask invariant — which lets whole-word operations
// (popcount, XOR Hamming, word-wise crossover masks) run without any
// per-call masking. See DESIGN's memory-layout section for the
// contract.
type BitString struct {
	// Words is the packed bit storage, LSB-first within each word.
	// Mutators that write whole words must preserve the tail-mask
	// invariant: bits at positions >= N in the final word stay zero.
	Words []uint64
	// N is the genome length in bits.
	N int
}

// wordsFor returns the number of 64-bit words required to hold n bits.
func wordsFor(n int) int { return (n + 63) >> 6 }

// TailMask returns the mask of valid bit positions in the final word of
// an n-bit string (all ones when n is a positive multiple of 64).
// Word-wise operators AND their random masks with it so the tail-mask
// invariant survives whole-word writes.
func TailMask(n int) uint64 {
	if r := uint(n) & 63; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// NewBitString returns an all-zero bit string of length n.
func NewBitString(n int) *BitString {
	return &BitString{Words: make([]uint64, wordsFor(n)), N: n}
}

// RandomBitString returns a uniformly random bit string of length n.
// It draws exactly one Bool per gene; the draw sequence predates the
// packed layout and is pinned by the equiv golden traces.
func RandomBitString(n int, r *rng.Source) *BitString {
	b := NewBitString(n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			b.Words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return b
}

// BitStringFromBools packs a []bool (the pre-packed wire format kept by
// internal/persist and internal/transport) into a BitString.
func BitStringFromBools(bools []bool) *BitString {
	b := NewBitString(len(bools))
	for i, v := range bools {
		if v {
			b.Words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return b
}

// ToBools unpacks the genes into a fresh []bool (wire format).
func (b *BitString) ToBools() []bool {
	out := make([]bool, b.N)
	for i := range out {
		out[i] = b.Words[i>>6]>>(uint(i)&63)&1 == 1
	}
	return out
}

// Get returns gene i. It panics when i is out of range.
func (b *BitString) Get(i int) bool {
	if uint(i) >= uint(b.N) {
		panic("genome: BitString index out of range")
	}
	return b.Words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set writes gene i. It panics when i is out of range.
func (b *BitString) Set(i int, v bool) {
	if uint(i) >= uint(b.N) {
		panic("genome: BitString index out of range")
	}
	if v {
		b.Words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.Words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip inverts gene i. It panics when i is out of range.
func (b *BitString) Flip(i int) {
	if uint(i) >= uint(b.N) {
		panic("genome: BitString index out of range")
	}
	b.Words[i>>6] ^= 1 << (uint(i) & 63)
}

// Clone implements core.Genome.
func (b *BitString) Clone() core.Genome {
	c := NewBitString(b.N)
	copy(c.Words, b.Words)
	return c
}

// CopyFrom implements core.InPlace. It panics on type or length mismatch.
func (b *BitString) CopyFrom(src core.Genome) {
	o := src.(*BitString)
	if b.N != o.N {
		panic("genome: BitString.CopyFrom length mismatch")
	}
	copy(b.Words, o.Words)
}

// Len implements core.Genome.
func (b *BitString) Len() int { return b.N }

// String implements core.Genome. Long genomes are abbreviated. At most
// 64 genes are rendered, so the digits fit a single stack buffer.
func (b *BitString) String() string {
	show := b.N
	if show > 64 {
		show = 64
	}
	var buf [64]byte
	for i := 0; i < show; i++ {
		buf[i] = '0' + byte(b.Words[i>>6]>>(uint(i)&63)&1)
	}
	if show == b.N {
		return string(buf[:show])
	}
	return string(buf[:show]) + fmt.Sprintf("…(%d)", b.N)
}

// OnesCount returns the number of one-bits (one popcount per word; the
// tail-mask invariant makes the final word safe to count unmasked).
func (b *BitString) OnesCount() int {
	n := 0
	for _, w := range b.Words {
		n += bits.OnesCount64(w)
	}
	return n
}

// OnesCountRange returns the number of one-bits in genes [lo, hi),
// counting whole words between the masked boundary words. It panics on
// an invalid range.
func (b *BitString) OnesCountRange(lo, hi int) int {
	if lo < 0 || hi > b.N || hi < lo {
		panic("genome: OnesCountRange invalid")
	}
	if lo == hi {
		return 0
	}
	fw, lw := lo>>6, (hi-1)>>6
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - uint(hi-1)&63)
	if fw == lw {
		return bits.OnesCount64(b.Words[fw] & first & last)
	}
	n := bits.OnesCount64(b.Words[fw] & first)
	for w := fw + 1; w < lw; w++ {
		n += bits.OnesCount64(b.Words[w])
	}
	return n + bits.OnesCount64(b.Words[lw]&last)
}

// Hamming returns the Hamming distance to o (XOR + popcount per word).
// It panics on length mismatch.
func (b *BitString) Hamming(o *BitString) int {
	if b.N != o.N {
		panic("genome: Hamming distance between different lengths")
	}
	d := 0
	for i, w := range b.Words {
		d += bits.OnesCount64(w ^ o.Words[i])
	}
	return d
}

// Equal reports whether b and o hold identical bits.
func (b *BitString) Equal(o *BitString) bool {
	if b.N != o.N {
		return false
	}
	for i, w := range b.Words {
		if w != o.Words[i] {
			return false
		}
	}
	return true
}

// Hash128 implements core.Hashable: a 128-bit digest of the packed
// words and the length, used as the key of the fitness memo-cache. Two
// independent lanes (FNV-1a and a splitmix-style avalanche) make
// accidental collisions across a cache's lifetime negligible.
func (b *BitString) Hash128() (uint64, uint64) {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h1 := uint64(fnvOffset) ^ uint64(b.N)*fnvPrime
	h2 := uint64(fnvOffset) + uint64(b.N)
	for _, w := range b.Words {
		h1 = (h1 ^ w) * fnvPrime
		h2 += w + 0x9e3779b97f4a7c15
		h2 = (h2 ^ h2>>30) * 0xbf58476d1ce4e5b9
		h2 = (h2 ^ h2>>27) * 0x94d049bb133111eb
		h2 ^= h2 >> 31
	}
	return h1, h2
}

// field extracts w bits (1..64) starting at gene lo, LSB-first.
func (b *BitString) field(lo, w int) uint64 {
	fw := lo >> 6
	off := uint(lo) & 63
	v := b.Words[fw] >> off
	if off != 0 && off+uint(w) > 64 {
		v |= b.Words[fw+1] << (64 - off)
	}
	if w < 64 {
		v &= 1<<uint(w) - 1
	}
	return v
}

// setField deposits the low w bits (1..64) of v at gene lo, LSB-first.
func (b *BitString) setField(lo, w int, v uint64) {
	fw := lo >> 6
	off := uint(lo) & 63
	mask := ^uint64(0)
	if w < 64 {
		mask = 1<<uint(w) - 1
	}
	b.Words[fw] = b.Words[fw]&^(mask<<off) | v<<off
	if off != 0 && off+uint(w) > 64 {
		b.Words[fw+1] = b.Words[fw+1]&^(mask>>(64-off)) | v>>(64-off)
	}
}

// Uint decodes bits [lo, hi) as a big-endian unsigned integer (gene lo
// is the most significant bit, as in the classic fixed-point decoding).
// It panics if the range is invalid or wider than 64 bits. The packed
// layout stores genes LSB-first, so the word-windowed field is
// bit-reversed down to the requested width.
func (b *BitString) Uint(lo, hi int) uint64 {
	if lo < 0 || hi > b.N || hi < lo || hi-lo > 64 {
		panic("genome: Uint range invalid")
	}
	w := hi - lo
	if w == 0 {
		return 0
	}
	return bits.Reverse64(b.field(lo, w)) >> (64 - uint(w))
}

// SetUint encodes the low hi-lo bits of v big-endian into genes [lo, hi).
func (b *BitString) SetUint(lo, hi int, v uint64) {
	if lo < 0 || hi > b.N || hi < lo || hi-lo > 64 {
		panic("genome: SetUint range invalid")
	}
	w := hi - lo
	if w == 0 {
		return
	}
	if w < 64 {
		v &= 1<<uint(w) - 1
	}
	b.setField(lo, w, bits.Reverse64(v)>>(64-uint(w)))
}

// GrayToBinary converts a Gray-coded value to plain binary.
func GrayToBinary(g uint64) uint64 {
	b := g
	for g >>= 1; g != 0; g >>= 1 {
		b ^= g
	}
	return b
}

// BinaryToGray converts a plain binary value to its Gray code.
func BinaryToGray(b uint64) uint64 { return b ^ (b >> 1) }

// DecodeReal decodes bits [lo, hi) into a float64 in [min, max], treating
// the bits as Gray code when gray is true. This is the classic
// fixed-point decoding of binary GAs for numeric optimisation.
func (b *BitString) DecodeReal(lo, hi int, min, max float64, gray bool) float64 {
	v := b.Uint(lo, hi)
	if gray {
		v = GrayToBinary(v)
	}
	bits := hi - lo
	den := float64(uint64(1)<<uint(bits) - 1)
	if den == 0 {
		return min
	}
	return min + (max-min)*float64(v)/den
}

// RealVector is a fixed-length real-valued chromosome with per-run bounds
// stored alongside the genes (shared, not copied, by Clone).
type RealVector struct {
	Genes []float64
	// Lo and Hi are the per-gene bounds used by bounded operators. They
	// are shared between clones (treated as immutable).
	Lo, Hi []float64
}

// NewRealVector returns a zero vector of length n with bounds [lo, hi] on
// every gene.
func NewRealVector(n int, lo, hi float64) *RealVector {
	l := make([]float64, n)
	h := make([]float64, n)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return &RealVector{Genes: make([]float64, n), Lo: l, Hi: h}
}

// RandomRealVector returns a uniformly random vector within bounds.
func RandomRealVector(n int, lo, hi float64, r *rng.Source) *RealVector {
	v := NewRealVector(n, lo, hi)
	for i := range v.Genes {
		v.Genes[i] = r.Range(lo, hi)
	}
	return v
}

// Clone implements core.Genome. Bounds are shared (immutable by
// convention); genes are copied.
func (v *RealVector) Clone() core.Genome {
	g := make([]float64, len(v.Genes))
	copy(g, v.Genes)
	return &RealVector{Genes: g, Lo: v.Lo, Hi: v.Hi}
}

// CopyFrom implements core.InPlace. Bounds are shared (immutable by
// convention), exactly as in Clone. It panics on type or length mismatch.
func (v *RealVector) CopyFrom(src core.Genome) {
	o := src.(*RealVector)
	if len(v.Genes) != len(o.Genes) {
		panic("genome: RealVector.CopyFrom length mismatch")
	}
	copy(v.Genes, o.Genes)
	v.Lo, v.Hi = o.Lo, o.Hi
}

// Len implements core.Genome.
func (v *RealVector) Len() int { return len(v.Genes) }

// String implements core.Genome.
func (v *RealVector) String() string {
	n := len(v.Genes)
	show := n
	if show > 8 {
		show = 8
	}
	parts := make([]string, 0, show)
	for i := 0; i < show; i++ {
		parts = append(parts, fmt.Sprintf("%.3g", v.Genes[i]))
	}
	s := "[" + strings.Join(parts, " ")
	if show < n {
		s += fmt.Sprintf(" …(%d)", n)
	}
	return s + "]"
}

// Clamp forces every gene back into its bounds.
func (v *RealVector) Clamp() {
	for i, g := range v.Genes {
		if g < v.Lo[i] {
			v.Genes[i] = v.Lo[i]
		} else if g > v.Hi[i] {
			v.Genes[i] = v.Hi[i]
		}
	}
}

// InBounds reports whether every gene lies within its bounds.
func (v *RealVector) InBounds() bool {
	for i, g := range v.Genes {
		if g < v.Lo[i] || g > v.Hi[i] {
			return false
		}
	}
	return true
}

// IntVector is a fixed-length integer chromosome where every gene lies in
// [0, Card) — e.g. an assignment of items to Card categories.
type IntVector struct {
	Genes []int
	// Card is the cardinality of each gene's domain.
	Card int
}

// NewIntVector returns a zero vector of length n with gene domain [0, card).
func NewIntVector(n, card int) *IntVector {
	return &IntVector{Genes: make([]int, n), Card: card}
}

// RandomIntVector returns a uniformly random integer vector.
func RandomIntVector(n, card int, r *rng.Source) *IntVector {
	v := NewIntVector(n, card)
	for i := range v.Genes {
		v.Genes[i] = r.Intn(card)
	}
	return v
}

// Clone implements core.Genome.
func (v *IntVector) Clone() core.Genome {
	g := make([]int, len(v.Genes))
	copy(g, v.Genes)
	return &IntVector{Genes: g, Card: v.Card}
}

// CopyFrom implements core.InPlace. It panics on type or length mismatch.
func (v *IntVector) CopyFrom(src core.Genome) {
	o := src.(*IntVector)
	if len(v.Genes) != len(o.Genes) {
		panic("genome: IntVector.CopyFrom length mismatch")
	}
	copy(v.Genes, o.Genes)
	v.Card = o.Card
}

// Len implements core.Genome.
func (v *IntVector) Len() int { return len(v.Genes) }

// String implements core.Genome.
func (v *IntVector) String() string {
	n := len(v.Genes)
	show := n
	if show > 16 {
		show = 16
	}
	parts := make([]string, 0, show)
	for i := 0; i < show; i++ {
		parts = append(parts, fmt.Sprintf("%d", v.Genes[i]))
	}
	s := "[" + strings.Join(parts, " ")
	if show < n {
		s += fmt.Sprintf(" …(%d)", n)
	}
	return s + "]"
}

// Valid reports whether every gene lies in [0, Card).
func (v *IntVector) Valid() bool {
	for _, g := range v.Genes {
		if g < 0 || g >= v.Card {
			return false
		}
	}
	return true
}

// Permutation is a chromosome encoding an ordering of n items; Perm always
// holds each of 0..n-1 exactly once.
type Permutation struct {
	Perm []int
}

// IdentityPermutation returns the identity ordering of n items.
func IdentityPermutation(n int) *Permutation {
	p := &Permutation{Perm: make([]int, n)}
	for i := range p.Perm {
		p.Perm[i] = i
	}
	return p
}

// RandomPermutation returns a uniformly random ordering of n items.
func RandomPermutation(n int, r *rng.Source) *Permutation {
	return &Permutation{Perm: r.Perm(n)}
}

// Clone implements core.Genome.
func (p *Permutation) Clone() core.Genome {
	q := make([]int, len(p.Perm))
	copy(q, p.Perm)
	return &Permutation{Perm: q}
}

// CopyFrom implements core.InPlace. It panics on type or length mismatch.
func (p *Permutation) CopyFrom(src core.Genome) {
	o := src.(*Permutation)
	if len(p.Perm) != len(o.Perm) {
		panic("genome: Permutation.CopyFrom length mismatch")
	}
	copy(p.Perm, o.Perm)
}

// Len implements core.Genome.
func (p *Permutation) Len() int { return len(p.Perm) }

// String implements core.Genome.
func (p *Permutation) String() string {
	n := len(p.Perm)
	show := n
	if show > 16 {
		show = 16
	}
	parts := make([]string, 0, show)
	for i := 0; i < show; i++ {
		parts = append(parts, fmt.Sprintf("%d", p.Perm[i]))
	}
	s := "(" + strings.Join(parts, " ")
	if show < n {
		s += fmt.Sprintf(" …(%d)", n)
	}
	return s + ")"
}

// Valid reports whether Perm is a true permutation of 0..n-1.
func (p *Permutation) Valid() bool {
	seen := make([]bool, len(p.Perm))
	for _, v := range p.Perm {
		if v < 0 || v >= len(p.Perm) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// PositionOf returns the index at which item v appears, or -1. Each
// call is a linear scan; callers that need the position of every item
// should build the inverse table once with InverseInto instead of
// issuing n scans (O(n) vs O(n²)).
func (p *Permutation) PositionOf(v int) int {
	for i, x := range p.Perm {
		if x == v {
			return i
		}
	}
	return -1
}

// InverseInto fills inv with the inverse index table (inv[v] = position
// of item v) in one pass — the index-table replacement for repeated
// PositionOf scans. It panics on length mismatch and requires a valid
// permutation.
func (p *Permutation) InverseInto(inv []int) {
	if len(inv) != len(p.Perm) {
		panic("genome: Permutation.InverseInto length mismatch")
	}
	for i, v := range p.Perm {
		inv[v] = i
	}
}
