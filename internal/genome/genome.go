// Package genome provides the concrete chromosome representations used by
// the library: binary strings (with optional Gray decoding), real-valued
// vectors, bounded integer vectors and permutations.
//
// The survey's reviewed systems span all four: binary strings are the
// classic Goldberg/Holland encoding, real vectors cover the ARGA-style
// real-coded algorithms (Oyama 2000), integer vectors cover assignment
// problems such as reactor-core loading (Pereira 2003), and permutations
// cover routing/scheduling (TSP, Sena 2001).
package genome

import (
	"fmt"
	"strings"

	"pga/internal/core"
	"pga/internal/rng"
)

// Compile-time interface checks: every representation supports both the
// allocating Clone and the in-place CopyFrom used by the engines' pooled
// generation buffers.
var (
	_ core.InPlace = (*BitString)(nil)
	_ core.InPlace = (*RealVector)(nil)
	_ core.InPlace = (*IntVector)(nil)
	_ core.InPlace = (*Permutation)(nil)
)

// BitString is a fixed-length binary chromosome.
type BitString struct {
	Bits []bool
}

// NewBitString returns an all-zero bit string of length n.
func NewBitString(n int) *BitString { return &BitString{Bits: make([]bool, n)} }

// RandomBitString returns a uniformly random bit string of length n.
func RandomBitString(n int, r *rng.Source) *BitString {
	b := NewBitString(n)
	for i := range b.Bits {
		b.Bits[i] = r.Bool()
	}
	return b
}

// Clone implements core.Genome.
func (b *BitString) Clone() core.Genome {
	c := NewBitString(len(b.Bits))
	copy(c.Bits, b.Bits)
	return c
}

// CopyFrom implements core.InPlace. It panics on type or length mismatch.
func (b *BitString) CopyFrom(src core.Genome) {
	o := src.(*BitString)
	if len(b.Bits) != len(o.Bits) {
		panic("genome: BitString.CopyFrom length mismatch")
	}
	copy(b.Bits, o.Bits)
}

// Len implements core.Genome.
func (b *BitString) Len() int { return len(b.Bits) }

// String implements core.Genome. Long genomes are abbreviated.
func (b *BitString) String() string {
	var sb strings.Builder
	n := len(b.Bits)
	show := n
	if show > 64 {
		show = 64
	}
	for i := 0; i < show; i++ {
		if b.Bits[i] {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if show < n {
		fmt.Fprintf(&sb, "…(%d)", n)
	}
	return sb.String()
}

// OnesCount returns the number of one-bits.
func (b *BitString) OnesCount() int {
	n := 0
	for _, bit := range b.Bits {
		if bit {
			n++
		}
	}
	return n
}

// Hamming returns the Hamming distance to o. It panics on length mismatch.
func (b *BitString) Hamming(o *BitString) int {
	if len(b.Bits) != len(o.Bits) {
		panic("genome: Hamming distance between different lengths")
	}
	d := 0
	for i := range b.Bits {
		if b.Bits[i] != o.Bits[i] {
			d++
		}
	}
	return d
}

// Equal reports whether b and o hold identical bits.
func (b *BitString) Equal(o *BitString) bool {
	if len(b.Bits) != len(o.Bits) {
		return false
	}
	for i := range b.Bits {
		if b.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// Uint decodes bits [lo, hi) as a big-endian unsigned integer.
// It panics if the range is invalid or wider than 64 bits.
func (b *BitString) Uint(lo, hi int) uint64 {
	if lo < 0 || hi > len(b.Bits) || hi < lo || hi-lo > 64 {
		panic("genome: Uint range invalid")
	}
	var v uint64
	for i := lo; i < hi; i++ {
		v <<= 1
		if b.Bits[i] {
			v |= 1
		}
	}
	return v
}

// SetUint encodes v big-endian into bits [lo, hi).
func (b *BitString) SetUint(lo, hi int, v uint64) {
	if lo < 0 || hi > len(b.Bits) || hi < lo || hi-lo > 64 {
		panic("genome: SetUint range invalid")
	}
	for i := hi - 1; i >= lo; i-- {
		b.Bits[i] = v&1 == 1
		v >>= 1
	}
}

// GrayToBinary converts a Gray-coded value to plain binary.
func GrayToBinary(g uint64) uint64 {
	b := g
	for g >>= 1; g != 0; g >>= 1 {
		b ^= g
	}
	return b
}

// BinaryToGray converts a plain binary value to its Gray code.
func BinaryToGray(b uint64) uint64 { return b ^ (b >> 1) }

// DecodeReal decodes bits [lo, hi) into a float64 in [min, max], treating
// the bits as Gray code when gray is true. This is the classic
// fixed-point decoding of binary GAs for numeric optimisation.
func (b *BitString) DecodeReal(lo, hi int, min, max float64, gray bool) float64 {
	v := b.Uint(lo, hi)
	if gray {
		v = GrayToBinary(v)
	}
	bits := hi - lo
	den := float64(uint64(1)<<uint(bits) - 1)
	if den == 0 {
		return min
	}
	return min + (max-min)*float64(v)/den
}

// RealVector is a fixed-length real-valued chromosome with per-run bounds
// stored alongside the genes (shared, not copied, by Clone).
type RealVector struct {
	Genes []float64
	// Lo and Hi are the per-gene bounds used by bounded operators. They
	// are shared between clones (treated as immutable).
	Lo, Hi []float64
}

// NewRealVector returns a zero vector of length n with bounds [lo, hi] on
// every gene.
func NewRealVector(n int, lo, hi float64) *RealVector {
	l := make([]float64, n)
	h := make([]float64, n)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return &RealVector{Genes: make([]float64, n), Lo: l, Hi: h}
}

// RandomRealVector returns a uniformly random vector within bounds.
func RandomRealVector(n int, lo, hi float64, r *rng.Source) *RealVector {
	v := NewRealVector(n, lo, hi)
	for i := range v.Genes {
		v.Genes[i] = r.Range(lo, hi)
	}
	return v
}

// Clone implements core.Genome. Bounds are shared (immutable by
// convention); genes are copied.
func (v *RealVector) Clone() core.Genome {
	g := make([]float64, len(v.Genes))
	copy(g, v.Genes)
	return &RealVector{Genes: g, Lo: v.Lo, Hi: v.Hi}
}

// CopyFrom implements core.InPlace. Bounds are shared (immutable by
// convention), exactly as in Clone. It panics on type or length mismatch.
func (v *RealVector) CopyFrom(src core.Genome) {
	o := src.(*RealVector)
	if len(v.Genes) != len(o.Genes) {
		panic("genome: RealVector.CopyFrom length mismatch")
	}
	copy(v.Genes, o.Genes)
	v.Lo, v.Hi = o.Lo, o.Hi
}

// Len implements core.Genome.
func (v *RealVector) Len() int { return len(v.Genes) }

// String implements core.Genome.
func (v *RealVector) String() string {
	n := len(v.Genes)
	show := n
	if show > 8 {
		show = 8
	}
	parts := make([]string, 0, show)
	for i := 0; i < show; i++ {
		parts = append(parts, fmt.Sprintf("%.3g", v.Genes[i]))
	}
	s := "[" + strings.Join(parts, " ")
	if show < n {
		s += fmt.Sprintf(" …(%d)", n)
	}
	return s + "]"
}

// Clamp forces every gene back into its bounds.
func (v *RealVector) Clamp() {
	for i, g := range v.Genes {
		if g < v.Lo[i] {
			v.Genes[i] = v.Lo[i]
		} else if g > v.Hi[i] {
			v.Genes[i] = v.Hi[i]
		}
	}
}

// InBounds reports whether every gene lies within its bounds.
func (v *RealVector) InBounds() bool {
	for i, g := range v.Genes {
		if g < v.Lo[i] || g > v.Hi[i] {
			return false
		}
	}
	return true
}

// IntVector is a fixed-length integer chromosome where every gene lies in
// [0, Card) — e.g. an assignment of items to Card categories.
type IntVector struct {
	Genes []int
	// Card is the cardinality of each gene's domain.
	Card int
}

// NewIntVector returns a zero vector of length n with gene domain [0, card).
func NewIntVector(n, card int) *IntVector {
	return &IntVector{Genes: make([]int, n), Card: card}
}

// RandomIntVector returns a uniformly random integer vector.
func RandomIntVector(n, card int, r *rng.Source) *IntVector {
	v := NewIntVector(n, card)
	for i := range v.Genes {
		v.Genes[i] = r.Intn(card)
	}
	return v
}

// Clone implements core.Genome.
func (v *IntVector) Clone() core.Genome {
	g := make([]int, len(v.Genes))
	copy(g, v.Genes)
	return &IntVector{Genes: g, Card: v.Card}
}

// CopyFrom implements core.InPlace. It panics on type or length mismatch.
func (v *IntVector) CopyFrom(src core.Genome) {
	o := src.(*IntVector)
	if len(v.Genes) != len(o.Genes) {
		panic("genome: IntVector.CopyFrom length mismatch")
	}
	copy(v.Genes, o.Genes)
	v.Card = o.Card
}

// Len implements core.Genome.
func (v *IntVector) Len() int { return len(v.Genes) }

// String implements core.Genome.
func (v *IntVector) String() string {
	n := len(v.Genes)
	show := n
	if show > 16 {
		show = 16
	}
	parts := make([]string, 0, show)
	for i := 0; i < show; i++ {
		parts = append(parts, fmt.Sprintf("%d", v.Genes[i]))
	}
	s := "[" + strings.Join(parts, " ")
	if show < n {
		s += fmt.Sprintf(" …(%d)", n)
	}
	return s + "]"
}

// Valid reports whether every gene lies in [0, Card).
func (v *IntVector) Valid() bool {
	for _, g := range v.Genes {
		if g < 0 || g >= v.Card {
			return false
		}
	}
	return true
}

// Permutation is a chromosome encoding an ordering of n items; Perm always
// holds each of 0..n-1 exactly once.
type Permutation struct {
	Perm []int
}

// IdentityPermutation returns the identity ordering of n items.
func IdentityPermutation(n int) *Permutation {
	p := &Permutation{Perm: make([]int, n)}
	for i := range p.Perm {
		p.Perm[i] = i
	}
	return p
}

// RandomPermutation returns a uniformly random ordering of n items.
func RandomPermutation(n int, r *rng.Source) *Permutation {
	return &Permutation{Perm: r.Perm(n)}
}

// Clone implements core.Genome.
func (p *Permutation) Clone() core.Genome {
	q := make([]int, len(p.Perm))
	copy(q, p.Perm)
	return &Permutation{Perm: q}
}

// CopyFrom implements core.InPlace. It panics on type or length mismatch.
func (p *Permutation) CopyFrom(src core.Genome) {
	o := src.(*Permutation)
	if len(p.Perm) != len(o.Perm) {
		panic("genome: Permutation.CopyFrom length mismatch")
	}
	copy(p.Perm, o.Perm)
}

// Len implements core.Genome.
func (p *Permutation) Len() int { return len(p.Perm) }

// String implements core.Genome.
func (p *Permutation) String() string {
	n := len(p.Perm)
	show := n
	if show > 16 {
		show = 16
	}
	parts := make([]string, 0, show)
	for i := 0; i < show; i++ {
		parts = append(parts, fmt.Sprintf("%d", p.Perm[i]))
	}
	s := "(" + strings.Join(parts, " ")
	if show < n {
		s += fmt.Sprintf(" …(%d)", n)
	}
	return s + ")"
}

// Valid reports whether Perm is a true permutation of 0..n-1.
func (p *Permutation) Valid() bool {
	seen := make([]bool, len(p.Perm))
	for _, v := range p.Perm {
		if v < 0 || v >= len(p.Perm) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// PositionOf returns the index at which item v appears, or -1.
func (p *Permutation) PositionOf(v int) int {
	for i, x := range p.Perm {
		if x == v {
			return i
		}
	}
	return -1
}
