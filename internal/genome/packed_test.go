package genome

// Edge-case coverage for the packed []uint64 BitString layout: lengths
// that straddle word boundaries, the tail-mask invariant (bits at index
// >= N in the last word stay zero through every mutating operation —
// popcount, Hamming and Equal rely on it to skip masking), and the
// big-endian Uint window against a bit-built reference.

import (
	"testing"
	"testing/quick"

	"pga/internal/rng"
)

// tailClean reports whether every storage bit beyond b.N is zero.
func tailClean(b *BitString) bool {
	if b.N == 0 {
		return len(b.Words) == 0
	}
	last := b.Words[len(b.Words)-1]
	return last&^TailMask(b.N) == 0
}

func TestBitStringBoundaryLengths(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 200} {
		b := RandomBitString(n, r)
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
		if want := (n + 63) / 64; len(b.Words) != want {
			t.Fatalf("n=%d: %d words, want %d", n, len(b.Words), want)
		}
		if !tailClean(b) {
			t.Fatalf("n=%d: random init left tail bits set", n)
		}
		// Count by accessor and by popcount must agree.
		ones := 0
		for i := 0; i < n; i++ {
			if b.Get(i) {
				ones++
			}
		}
		if b.OnesCount() != ones {
			t.Fatalf("n=%d: OnesCount=%d, per-bit count=%d", n, b.OnesCount(), ones)
		}
		// Flip every bit; the tail must stay clean and the count invert.
		for i := 0; i < n; i++ {
			b.Flip(i)
		}
		if !tailClean(b) {
			t.Fatalf("n=%d: Flip leaked into the tail", n)
		}
		if b.OnesCount() != n-ones {
			t.Fatalf("n=%d: complement OnesCount=%d, want %d", n, b.OnesCount(), n-ones)
		}
	}
}

func TestBitStringZeroLength(t *testing.T) {
	a, b := NewBitString(0), NewBitString(0)
	if a.OnesCount() != 0 || a.Hamming(b) != 0 || !a.Equal(b) {
		t.Fatal("zero-length bitstring arithmetic wrong")
	}
	c := a.Clone().(*BitString)
	if c.Len() != 0 {
		t.Fatal("zero-length clone wrong")
	}
	a.CopyFrom(b)
	if s := a.String(); s != "" {
		t.Fatalf("zero-length String = %q", s)
	}
}

func TestBitStringIndexPanics(t *testing.T) {
	b := NewBitString(64)
	for _, f := range []func(){
		func() { b.Get(-1) },
		func() { b.Get(64) },
		func() { b.Set(64, true) },
		func() { b.Flip(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected index panic")
				}
			}()
			f()
		}()
	}
}

func TestBitStringCopyFromMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on CopyFrom length mismatch")
		}
	}()
	NewBitString(65).CopyFrom(NewBitString(64))
}

func TestBitStringCopyFromKeepsTail(t *testing.T) {
	r := rng.New(8)
	src := RandomBitString(70, r)
	dst := NewBitString(70)
	dst.CopyFrom(src)
	if !dst.Equal(src) || !tailClean(dst) {
		t.Fatal("CopyFrom not exact or tail dirty")
	}
	// Mutating the copy must not touch the source (word slices unshared).
	dst.Flip(69)
	if dst.Equal(src) {
		t.Fatal("CopyFrom aliases word storage")
	}
}

func TestBoolsRoundTrip(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{0, 1, 64, 100} {
		b := RandomBitString(n, r)
		c := BitStringFromBools(b.ToBools())
		if !b.Equal(c) || !tailClean(c) {
			t.Fatalf("n=%d: []bool round trip not exact", n)
		}
	}
}

func TestOnesCountRangeMatchesNaive(t *testing.T) {
	r := rng.New(10)
	b := RandomBitString(200, r)
	check := func(a, z uint8) bool {
		lo, hi := int(a)%201, int(z)%201
		if lo > hi {
			lo, hi = hi, lo
		}
		naive := 0
		for i := lo; i < hi; i++ {
			if b.Get(i) {
				naive++
			}
		}
		return b.OnesCountRange(lo, hi) == naive
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingMatchesNaive(t *testing.T) {
	r := rng.New(11)
	for _, n := range []int{1, 63, 64, 65, 130} {
		a, b := RandomBitString(n, r), RandomBitString(n, r)
		naive := 0
		for i := 0; i < n; i++ {
			if a.Get(i) != b.Get(i) {
				naive++
			}
		}
		if d := a.Hamming(b); d != naive {
			t.Fatalf("n=%d: Hamming=%d, naive=%d", n, d, naive)
		}
	}
}

func TestUintMatchesBitReference(t *testing.T) {
	// The big-endian window decode must equal the bit-built value for
	// windows that cross word boundaries.
	r := rng.New(12)
	b := RandomBitString(200, r)
	for _, w := range [][2]int{{0, 10}, {60, 70}, {63, 127}, {64, 128}, {100, 164}, {190, 200}} {
		lo, hi := w[0], w[1]
		var ref uint64
		for i := lo; i < hi; i++ {
			ref <<= 1
			if b.Get(i) {
				ref |= 1
			}
		}
		if got := b.Uint(lo, hi); got != ref {
			t.Fatalf("Uint(%d,%d)=%#x, bit-built %#x", lo, hi, got, ref)
		}
	}
}

func TestSetUintCrossesWords(t *testing.T) {
	b := NewBitString(200)
	for i := 0; i < 200; i++ {
		b.Set(i, true)
	}
	b.SetUint(60, 124, 0) // spans words 0..1
	if got := b.Uint(60, 124); got != 0 {
		t.Fatalf("cross-word SetUint: window = %#x, want 0", got)
	}
	if !b.Get(59) || !b.Get(124) {
		t.Fatal("SetUint clobbered neighbouring bits")
	}
	if !tailClean(b) {
		t.Fatal("SetUint dirtied the tail")
	}
}

func TestHash128Distinguishes(t *testing.T) {
	a := NewBitString(100)
	b := NewBitString(100)
	h1a, h2a := a.Hash128()
	h1b, h2b := b.Hash128()
	if h1a != h1b || h2a != h2b {
		t.Fatal("equal bitstrings hash differently")
	}
	b.Flip(99)
	h1b, h2b = b.Hash128()
	if h1a == h1b && h2a == h2b {
		t.Fatal("single-bit flip did not change the hash")
	}
	// Length is part of the hash: same (empty) words, different N.
	c, d := NewBitString(63), NewBitString(64)
	c1, c2 := c.Hash128()
	d1, d2 := d.Hash128()
	if c1 == d1 && c2 == d2 {
		t.Fatal("lengths 63 and 64 collide")
	}
}

func TestPermutationInverseInto(t *testing.T) {
	r := rng.New(13)
	p := RandomPermutation(40, r)
	inv := make([]int, 40)
	p.InverseInto(inv)
	for v := 0; v < 40; v++ {
		if p.Perm[inv[v]] != v || inv[v] != p.PositionOf(v) {
			t.Fatalf("InverseInto disagrees with PositionOf at %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on InverseInto length mismatch")
		}
	}()
	p.InverseInto(make([]int, 39))
}

// BenchmarkPositionOf pins the O(n) scan cost that motivated
// InverseInto: resolving every value's position via PositionOf is
// quadratic, via one InverseInto pass linear.
func BenchmarkPositionOf(b *testing.B) {
	p := RandomPermutation(256, rng.New(14))
	b.Run("scan-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for v := 0; v < 256; v++ {
				_ = p.PositionOf(v)
			}
		}
	})
	inv := make([]int, 256)
	b.Run("inverse-into", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.InverseInto(inv)
		}
	})
}

func BenchmarkBitStringString(b *testing.B) {
	s := RandomBitString(64, rng.New(15))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.String()
	}
}

func BenchmarkOnesCount(b *testing.B) {
	s := RandomBitString(1024, rng.New(16))
	b.Run("popcount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.OnesCount()
		}
	})
	b.Run("per-bit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for j := 0; j < s.Len(); j++ {
				if s.Get(j) {
					n++
				}
			}
			_ = n
		}
	})
}
