package genome

import (
	"strings"
	"testing"
	"testing/quick"

	"pga/internal/rng"
)

func TestBitStringCloneDeep(t *testing.T) {
	r := rng.New(1)
	b := RandomBitString(32, r)
	c := b.Clone().(*BitString)
	c.Flip(0)
	if b.Get(0) == c.Get(0) {
		t.Fatal("Clone aliases bits")
	}
	if c.Len() != 32 {
		t.Fatal("Clone changed length")
	}
}

func TestBitStringOnesCount(t *testing.T) {
	b := NewBitString(8)
	if b.OnesCount() != 0 {
		t.Fatal("fresh bitstring not zero")
	}
	b.Set(1, true)
	b.Set(3, true)
	b.Set(7, true)
	if b.OnesCount() != 3 {
		t.Fatalf("OnesCount=%d want 3", b.OnesCount())
	}
}

func TestBitStringHamming(t *testing.T) {
	a := NewBitString(5)
	b := NewBitString(5)
	b.Set(0, true)
	b.Set(4, true)
	if d := a.Hamming(b); d != 2 {
		t.Fatalf("Hamming=%d want 2", d)
	}
	if !a.Equal(a.Clone().(*BitString)) {
		t.Fatal("Equal failed on clone")
	}
	if a.Equal(b) {
		t.Fatal("Equal true for different strings")
	}
	if a.Equal(NewBitString(4)) {
		t.Fatal("Equal true for different lengths")
	}
}

func TestBitStringHammingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	NewBitString(3).Hamming(NewBitString(4))
}

func TestBitStringUintRoundTrip(t *testing.T) {
	b := NewBitString(16)
	for _, v := range []uint64{0, 1, 5, 255, 65535} {
		b.SetUint(0, 16, v)
		if got := b.Uint(0, 16); got != v {
			t.Fatalf("Uint round trip: got %d want %d", got, v)
		}
	}
	// Sub-range encoding must not clobber other bits.
	b.SetUint(0, 16, 0xFFFF)
	b.SetUint(4, 8, 0)
	if got := b.Uint(0, 4); got != 0xF {
		t.Fatalf("prefix clobbered: %x", got)
	}
	if got := b.Uint(8, 16); got != 0xFF {
		t.Fatalf("suffix clobbered: %x", got)
	}
}

func TestBitStringUintPanics(t *testing.T) {
	b := NewBitString(100)
	for _, f := range []func(){
		func() { b.Uint(-1, 5) },
		func() { b.Uint(0, 101) },
		func() { b.Uint(5, 4) },
		func() { b.Uint(0, 65) },
		func() { b.SetUint(0, 65, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGrayRoundTrip(t *testing.T) {
	check := func(v uint32) bool {
		return GrayToBinary(BinaryToGray(uint64(v))) == uint64(v)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Successive Gray codes differ in exactly one bit.
	for v := uint64(0); v < 1024; v++ {
		a, b := BinaryToGray(v), BinaryToGray(v+1)
		x := a ^ b
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("gray(%d) and gray(%d) differ in != 1 bit", v, v+1)
		}
	}
}

func TestDecodeReal(t *testing.T) {
	b := NewBitString(10)
	if got := b.DecodeReal(0, 10, -5, 5, false); got != -5 {
		t.Fatalf("all-zero decodes to %v, want -5", got)
	}
	for i := 0; i < b.Len(); i++ {
		b.Set(i, true)
	}
	if got := b.DecodeReal(0, 10, -5, 5, false); got != 5 {
		t.Fatalf("all-one decodes to %v, want 5", got)
	}
	// Gray all-ones decodes to binary 0b1010101010 pattern — just check range.
	g := b.DecodeReal(0, 10, -5, 5, true)
	if g < -5 || g > 5 {
		t.Fatalf("gray decode out of range: %v", g)
	}
}

func TestRandomBitStringIsRandom(t *testing.T) {
	r := rng.New(2)
	b := RandomBitString(256, r)
	ones := b.OnesCount()
	if ones < 96 || ones > 160 {
		t.Fatalf("random bitstring heavily biased: %d/256 ones", ones)
	}
}

func TestBitStringStringAbbreviates(t *testing.T) {
	b := NewBitString(100)
	s := b.String()
	if !strings.Contains(s, "…(100)") {
		t.Fatalf("long String not abbreviated: %q", s)
	}
	if NewBitString(4).String() != "0000" {
		t.Fatal("short String wrong")
	}
}

func TestRealVectorBasics(t *testing.T) {
	r := rng.New(3)
	v := RandomRealVector(10, -2, 2, r)
	if v.Len() != 10 {
		t.Fatal("wrong length")
	}
	if !v.InBounds() {
		t.Fatal("random vector out of bounds")
	}
	c := v.Clone().(*RealVector)
	c.Genes[0] = 99
	if v.Genes[0] == 99 {
		t.Fatal("Clone aliases genes")
	}
}

func TestRealVectorClamp(t *testing.T) {
	v := NewRealVector(3, -1, 1)
	v.Genes[0], v.Genes[1], v.Genes[2] = -5, 0.5, 5
	if v.InBounds() {
		t.Fatal("out-of-bounds vector reported in bounds")
	}
	v.Clamp()
	if !v.InBounds() || v.Genes[0] != -1 || v.Genes[1] != 0.5 || v.Genes[2] != 1 {
		t.Fatalf("Clamp wrong: %v", v.Genes)
	}
}

func TestRealVectorString(t *testing.T) {
	v := NewRealVector(20, 0, 1)
	if !strings.Contains(v.String(), "…(20)") {
		t.Fatal("long vector not abbreviated")
	}
	if s := NewRealVector(2, 0, 1).String(); s != "[0 0]" {
		t.Fatalf("short String = %q", s)
	}
}

func TestIntVectorBasics(t *testing.T) {
	r := rng.New(4)
	v := RandomIntVector(50, 7, r)
	if !v.Valid() {
		t.Fatal("random int vector invalid")
	}
	c := v.Clone().(*IntVector)
	c.Genes[0] = 6
	v.Genes[0] = 0
	if c.Genes[0] != 6 {
		t.Fatal("Clone aliases genes")
	}
	v.Genes[0] = 7
	if v.Valid() {
		t.Fatal("Valid missed out-of-domain gene")
	}
	v.Genes[0] = -1
	if v.Valid() {
		t.Fatal("Valid missed negative gene")
	}
}

func TestIntVectorString(t *testing.T) {
	v := NewIntVector(20, 3)
	if !strings.Contains(v.String(), "…(20)") {
		t.Fatal("long IntVector not abbreviated")
	}
}

func TestPermutationIdentity(t *testing.T) {
	p := IdentityPermutation(5)
	for i, v := range p.Perm {
		if v != i {
			t.Fatalf("identity wrong at %d: %d", i, v)
		}
	}
	if !p.Valid() {
		t.Fatal("identity invalid")
	}
}

func TestPermutationRandomValid(t *testing.T) {
	r := rng.New(5)
	check := func(n uint8) bool {
		size := int(n%30) + 2
		return RandomPermutation(size, r).Valid()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationCloneDeep(t *testing.T) {
	r := rng.New(6)
	p := RandomPermutation(10, r)
	c := p.Clone().(*Permutation)
	c.Perm[0], c.Perm[1] = c.Perm[1], c.Perm[0]
	if !p.Valid() || !c.Valid() {
		t.Fatal("clone broke validity")
	}
	same := true
	for i := range p.Perm {
		if p.Perm[i] != c.Perm[i] {
			same = false
		}
	}
	if same {
		t.Fatal("swap did not alter clone (aliasing?)")
	}
}

func TestPermutationPositionOf(t *testing.T) {
	p := &Permutation{Perm: []int{2, 0, 1}}
	if p.PositionOf(0) != 1 || p.PositionOf(2) != 0 || p.PositionOf(5) != -1 {
		t.Fatal("PositionOf wrong")
	}
}

func TestPermutationValidDetectsDuplicates(t *testing.T) {
	p := &Permutation{Perm: []int{0, 1, 1}}
	if p.Valid() {
		t.Fatal("duplicate not detected")
	}
	p = &Permutation{Perm: []int{0, 1, 3}}
	if p.Valid() {
		t.Fatal("out-of-range not detected")
	}
}

func TestPermutationString(t *testing.T) {
	p := IdentityPermutation(20)
	if !strings.Contains(p.String(), "…(20)") {
		t.Fatal("long permutation not abbreviated")
	}
	if s := IdentityPermutation(3).String(); s != "(0 1 2)" {
		t.Fatalf("short String = %q", s)
	}
}
