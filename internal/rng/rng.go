// Package rng provides a deterministic, splittable pseudo-random number
// generator for parallel genetic algorithms.
//
// Every deme, worker and operator in this library draws randomness from its
// own *rng.Source. Sources are created either from a seed or by splitting an
// existing source into independent streams, so a parallel run with k demes is
// reproducible regardless of goroutine scheduling: deme i always sees the
// same stream no matter how the demes interleave.
//
// The core generator is xoshiro256**, seeded through SplitMix64. Splitting
// derives child seeds from the parent's SplitMix64 sequence, which is the
// standard construction for independent parallel streams.
package rng

import "math"

// Source is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s [4]uint64
	// splitCtr feeds SplitMix64 when deriving child streams so that
	// repeated Split calls yield distinct, decorrelated children.
	splitCtr uint64
}

// splitmix64 advances x and returns the next SplitMix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	// All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
	// zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	src.splitCtr = splitmix64(&x)
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the parent's. The parent advances its split counter but not its main
// stream, so interleaving Split calls with draws is still deterministic.
func (r *Source) Split() *Source {
	c := r.splitCtr
	seed := splitmix64(&c)
	r.splitCtr = c
	return New(seed ^ 0xa3c59ac2f0b7d1e4)
}

// SplitN returns n independent child Sources (a convenience for one stream
// per deme or worker).
func (r *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability 1/2.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Chance returns true with probability p (clamped to [0,1]).
func (r *Source) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a uniform random permutation of [0, len(p)) without
// allocating — the scratch-buffer form of Perm for generation hot paths.
// The RNG draw sequence is identical to Perm(len(p)).
func (r *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *Source) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample called with k out of range")
	}
	return r.SampleInto(make([]int, n), k)
}

// SampleInto draws k distinct indices uniformly from [0, len(p)) using p as
// the index table, returning p[:k] — the scratch-buffer form of Sample for
// generation hot paths. p is overwritten. The RNG draw sequence is
// identical to Sample(len(p), k). It panics if k > len(p) or k < 0.
func (r *Source) SampleInto(p []int, k int) []int {
	n := len(p)
	if k < 0 || k > n {
		panic("rng: SampleInto called with k out of range")
	}
	// Partial Fisher–Yates over an index table; O(n) space, O(k) swaps.
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Exp returns an exponentially distributed float64 with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp called with lambda <= 0")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// State returns the generator's full internal state (four xoshiro words
// plus the split counter) for checkpointing. Restoring it with SetState
// resumes the stream exactly.
func (r *Source) State() [5]uint64 {
	return [5]uint64{r.s[0], r.s[1], r.s[2], r.s[3], r.splitCtr}
}

// SetState restores a state captured by State. It panics on the all-zero
// xoshiro state, which is unreachable from any valid stream.
func (r *Source) SetState(st [5]uint64) {
	if st[0]|st[1]|st[2]|st[3] == 0 {
		panic("rng: SetState with all-zero xoshiro state")
	}
	r.s = [4]uint64{st[0], st[1], st[2], st[3]}
	r.splitCtr = st[4]
}

// Jump advances the stream by 2^128 draws; child code that wants manual
// stream partitioning can use repeated Jump instead of Split.
func (r *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = [4]uint64{s0, s1, s2, s3}
}
