package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded stream has too many repeats: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams share %d/1000 draws", same)
	}
}

func TestSplitDeterministicAcrossRuns(t *testing.T) {
	mk := func() []uint64 {
		p := New(99)
		kids := p.SplitN(4)
		var out []uint64
		for _, k := range kids {
			for i := 0; i < 8; i++ {
				out = append(out, k.Uint64())
			}
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SplitN not reproducible at %d", i)
		}
	}
}

func TestSplitDoesNotPerturbParentStream(t *testing.T) {
	a := New(5)
	b := New(5)
	a.Uint64()
	b.Uint64()
	_ = b.Split() // must not change b's main stream
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split perturbed parent stream at draw %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestChance(t *testing.T) {
	r := New(23)
	if r.Chance(0) {
		t.Fatal("Chance(0) returned true")
	}
	if !r.Chance(1) {
		t.Fatal("Chance(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Chance(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Fatalf("Chance(0.3) rate = %v", float64(hits)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(31)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("Perm first-element bucket %d = %d, want ~%f", i, c, want)
		}
	}
}

func TestSample(t *testing.T) {
	r := New(37)
	for k := 0; k <= 10; k++ {
		s := r.Sample(10, k)
		if len(s) != k {
			t.Fatalf("Sample(10,%d) returned %d elements", k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("Sample produced invalid/duplicate index %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestRange(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.Range(-2.5, 7.5)
		if v < -2.5 || v >= 7.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(43)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestJumpDecorrelates(t *testing.T) {
	a := New(53)
	b := New(53)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream shares %d/1000 draws with original", same)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(59)
	n := 20
	calls := 0
	r.Shuffle(n, func(i, j int) { calls++ })
	if calls != n-1 {
		t.Fatalf("Shuffle made %d swap calls, want %d", calls, n-1)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(61)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.5) > 0.01 {
		t.Fatalf("Bool true-rate = %v", float64(trues)/n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
