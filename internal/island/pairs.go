package island

import "pga/internal/core"

// DrawPairs returns this package's RNG-draw equivalence pairs (see
// core.DrawPair): the in-process deme seed split and the wire-mode one
// must fork the master stream identically, or a distributed run stops
// reproducing its in-process twin.
func DrawPairs() []core.DrawPair {
	return []core.DrawPair{
		{
			A:    "pga/internal/island.newDemeStreams",
			B:    "pga/internal/island.WireStreams",
			Test: "TestWireStreamsMatchInProcessSplit",
			Why:  "a wire run over n islands must give every island the same engine/migration streams its deme would have had in-process",
		},
	}
}
