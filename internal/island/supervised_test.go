package island

import (
	"runtime"
	"testing"
	"time"

	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/supervise"
	"pga/internal/topology"
)

// supervisedConfig returns a 4-deme ring OneMax config with supervision.
func supervisedConfig(sync bool, res *supervise.Config, plan *supervise.FaultPlan) Config {
	return Config{
		Topology:   topology.Ring(4),
		Policy:     migration.Policy{Interval: 5, Count: 2, Sync: sync, Buffer: 2},
		NewEngine:  onemaxEngines(48, 25),
		Seed:       3,
		Resilience: res,
		Faults:     plan,
	}
}

// TestSupervisedAcceptance is the PR's acceptance run: a seeded island
// run with an injected deme panic and an injected hang completes,
// reports the failures in its counters, and finds a solution no worse
// than the fault-free run with the same seed.
func TestSupervisedAcceptance(t *testing.T) {
	res := &supervise.Config{
		CheckpointEvery: 5,
		MaxRestarts:     4,
		Heartbeat:       40 * time.Millisecond,
		Backoff:         time.Millisecond,
	}
	clean := New(supervisedConfig(true, res, nil)).RunParallel(300, false)
	if !clean.Solved {
		t.Fatalf("fault-free supervised run failed: best=%v", clean.BestFitness)
	}
	if clean.Restarts != 0 || clean.PanicsRecovered != 0 || clean.HeartbeatTimeouts != 0 {
		t.Fatalf("fault-free run reported failures: %+v", clean)
	}

	plan := supervise.NewFaultPlan().
		PanicAt(1, 6).
		HangAt(2, 9, 250*time.Millisecond)
	faulty := New(supervisedConfig(true, res, plan)).RunParallel(300, false)
	if !faulty.Solved {
		t.Fatalf("faulty run did not complete: best=%v", faulty.BestFitness)
	}
	if faulty.Restarts < 1 {
		t.Fatalf("Restarts = %d, want >= 1", faulty.Restarts)
	}
	if faulty.HeartbeatTimeouts < 1 {
		t.Fatalf("HeartbeatTimeouts = %d, want >= 1", faulty.HeartbeatTimeouts)
	}
	if faulty.PanicsRecovered < 1 {
		t.Fatalf("PanicsRecovered = %d, want >= 1", faulty.PanicsRecovered)
	}
	if faulty.BestFitness < clean.BestFitness {
		t.Fatalf("faulty run found worse solution: %v < %v", faulty.BestFitness, clean.BestFitness)
	}
	if len(faulty.Failures) < 2 {
		t.Fatalf("failure log too short: %+v", faulty.Failures)
	}
	if len(faulty.DeadDemes) != 0 {
		t.Fatalf("transient faults killed demes: %v", faulty.DeadDemes)
	}
}

// TestSupervisedSyncMatchesUnsupervisedWhenFaultFree pins the zero-cost
// property: with no faults and no heartbeat, the supervised sync-parallel
// run performs the identical computation to the unsupervised one.
func TestSupervisedSyncMatchesUnsupervisedWhenFaultFree(t *testing.T) {
	mk := func(res *supervise.Config) *Model {
		return New(Config{
			Topology:   topology.Ring(3),
			Policy:     migration.Policy{Interval: 4, Count: 1, Sync: true},
			NewEngine:  onemaxEngines(256, 16),
			Seed:       13,
			Resilience: res,
		})
	}
	plain := mk(nil).RunParallel(25, false)
	sup := mk(&supervise.Config{}).RunParallel(25, false)
	if plain.BestFitness != sup.BestFitness || plain.Evaluations != sup.Evaluations {
		t.Fatalf("supervised (%v, %d evals) != unsupervised (%v, %d evals)",
			sup.BestFitness, sup.Evaluations, plain.BestFitness, plain.Evaluations)
	}
}

func TestSupervisedAsyncSolvesUnderPanics(t *testing.T) {
	res := &supervise.Config{CheckpointEvery: 3, MaxRestarts: 4, Backoff: time.Millisecond}
	// Async demes free-run and this must pass on a single-CPU box, where
	// one deme can solve the whole run before the others are scheduled at
	// all. Panicking every deme's very first step makes the injection
	// immune to scheduling skew: any deme that steps panics once, and the
	// restart backoff yields the processor to the rest.
	plan := supervise.NewFaultPlan().
		PanicAt(0, 1).PanicAt(1, 1).PanicAt(2, 1).PanicAt(3, 1)
	cfg := supervisedConfig(false, res, plan)
	cfg.NewEngine = onemaxEngines(96, 25)
	r := New(cfg).RunParallel(600, false)
	if !r.Solved {
		t.Fatalf("async supervised run failed: best=%v", r.BestFitness)
	}
	if r.PanicsRecovered < 2 || r.Restarts < 2 {
		t.Fatalf("panics=%d restarts=%d, want >= 2 each", r.PanicsRecovered, r.Restarts)
	}
}

// TestSupervisedDeadDemeIsRoutedAround exhausts one deme's restart
// budget and checks the run completes with the dead deme frozen at its
// checkpoint and healed out of the ring.
func TestSupervisedDeadDemeIsRoutedAround(t *testing.T) {
	res := &supervise.Config{
		CheckpointEvery: 5,
		MaxRestarts:     -1, // first failure kills the deme
		Backoff:         time.Millisecond,
	}
	plan := supervise.NewFaultPlan().PanicAt(1, 3)
	r := New(supervisedConfig(true, res, plan)).RunParallel(300, false)
	if !r.Solved {
		t.Fatalf("run with a dead deme failed: best=%v", r.BestFitness)
	}
	if len(r.DeadDemes) != 1 || r.DeadDemes[0] != 1 {
		t.Fatalf("DeadDemes = %v, want [1]", r.DeadDemes)
	}
	if len(r.PerDemeBest) != 4 {
		t.Fatalf("per-deme stats missing: %v", r.PerDemeBest)
	}
	// The dead deme froze at its generation-0 checkpoint: its best must
	// be a valid OneMax fitness, not the Direction.Worst sentinel.
	if r.PerDemeBest[1] < 0 || r.PerDemeBest[1] > 48 {
		t.Fatalf("dead deme best %v not a frozen checkpoint value", r.PerDemeBest[1])
	}
	last := r.Failures[len(r.Failures)-1]
	if last.Deme != 1 || last.Restarted {
		t.Fatalf("death event wrong: %+v", last)
	}
}

// TestSupervisedAsyncDeadLetter stalls a deme long enough for its
// neighbour's migrant batches to exhaust their retry budget, and checks
// the lost traffic is dead-lettered rather than silently dropped.
func TestSupervisedAsyncDeadLetter(t *testing.T) {
	res := &supervise.Config{
		CheckpointEvery: 5,
		MaxRestarts:     2,
		Heartbeat:       100 * time.Millisecond,
		Backoff:         time.Millisecond,
		MaxSendRetries:  2,
	}
	// Deme 1 wedges at generation 2 for well over the heartbeat; deme 0
	// keeps migrating into deme 1's undrained 1-slot inbox meanwhile.
	plan := supervise.NewFaultPlan().HangAt(1, 2, 300*time.Millisecond)
	m := New(Config{
		Topology:   topology.Ring(2),
		Policy:     migration.Policy{Interval: 1, Count: 1, Sync: false, Buffer: 1},
		NewEngine:  onemaxEngines(64, 10),
		Seed:       21,
		Resilience: res,
		Faults:     plan,
	})
	r := m.RunParallel(200, false)
	if r.HeartbeatTimeouts < 1 {
		t.Fatalf("HeartbeatTimeouts = %d, want >= 1", r.HeartbeatTimeouts)
	}
	if r.DeadLettered < 1 {
		t.Fatalf("DeadLettered = %d, want >= 1", r.DeadLettered)
	}
	if r.Generations == 0 || r.Evaluations == 0 {
		t.Fatalf("run did not progress: %+v", r)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (hung injected steps may outlive the run by their hang
// duration before exiting).
func waitForGoroutines(t *testing.T, baseline int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunParallelNoGoroutineLeak asserts the parallel runners strand no
// workers: sync, async, and supervised runs with an injected crash and
// an injected hang all return the process to its goroutine baseline.
func TestRunParallelNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Plain sync and async runs.
	New(supervisedConfig(true, nil, nil)).RunParallel(60, false)
	waitForGoroutines(t, baseline, 3*time.Second)
	New(supervisedConfig(false, nil, nil)).RunParallel(60, false)
	waitForGoroutines(t, baseline, 3*time.Second)

	// Supervised run with a crash and a hang: the abandoned hung step
	// must unwind by itself once its stall ends.
	res := &supervise.Config{
		CheckpointEvery: 5,
		MaxRestarts:     3,
		Heartbeat:       30 * time.Millisecond,
		Backoff:         time.Millisecond,
	}
	plan := supervise.NewFaultPlan().PanicAt(0, 3).HangAt(3, 5, 150*time.Millisecond)
	New(supervisedConfig(true, res, plan)).RunParallel(80, false)
	waitForGoroutines(t, baseline, 3*time.Second)

	plan = supervise.NewFaultPlan().PanicAt(2, 4).HangAt(1, 6, 150*time.Millisecond)
	New(supervisedConfig(false, res, plan)).RunParallel(80, false)
	waitForGoroutines(t, baseline, 3*time.Second)
}

// TestSupervisedMixedEngines checks supervision restarts heterogeneous
// demes through the same NewEngine factory used at construction.
func TestSupervisedMixedEngines(t *testing.T) {
	res := &supervise.Config{CheckpointEvery: 3, MaxRestarts: 3, Backoff: time.Millisecond}
	plan := supervise.NewFaultPlan().PanicAt(1, 4).PanicAt(2, 5)
	m := New(Config{
		Topology: topology.Ring(4),
		Policy:   migration.Policy{Interval: 5, Count: 1, Sync: true},
		NewEngine: func(deme int, r *rng.Source) ga.Engine {
			cfg := ga.Config{
				Problem:   problems.OneMax{N: 32},
				PopSize:   16,
				Crossover: operators.Uniform{},
				Mutator:   operators.BitFlip{},
				RNG:       r,
			}
			if deme%2 == 0 {
				return ga.NewGenerational(cfg)
			}
			return ga.NewSteadyState(cfg, true)
		},
		Seed:       10,
		Resilience: res,
		Faults:     plan,
	})
	r := m.RunParallel(200, false)
	if !r.Solved {
		t.Fatalf("mixed-engine supervised run failed: best=%v", r.BestFitness)
	}
	if r.Restarts < 2 {
		t.Fatalf("Restarts = %d, want >= 2", r.Restarts)
	}
}

// TestSupervisedTraceMonotone checks the sync supervised trace keeps the
// elitist global-best monotonicity even across restarts (a restored
// checkpoint can only roll a single deme back, never the global best).
func TestSupervisedTraceMonotone(t *testing.T) {
	res := &supervise.Config{CheckpointEvery: 4, MaxRestarts: 3, Backoff: time.Millisecond}
	plan := supervise.NewFaultPlan().PanicAt(0, 5).PanicAt(3, 11)
	m := New(supervisedConfig(true, res, plan))
	r := m.RunParallel(40, true)
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for i := 1; i < len(r.Trace); i++ {
		if r.Trace[i].Best < r.Trace[i-1].Best {
			t.Fatalf("global best regressed at %d: %v -> %v", i, r.Trace[i-1].Best, r.Trace[i].Best)
		}
	}
	if r.PanicsRecovered < 1 {
		t.Fatalf("PanicsRecovered = %d", r.PanicsRecovered)
	}
}
