package island

// Wire mode: one island per OS process, migration over a real
// transport (internal/transport). RunWire is the process-local half of
// the distributed island model — cmd/pgaisland wires it to a TCP
// endpoint and N processes form the island ring the in-process modes
// simulate with goroutines.
//
// Failure is the normal case out here, so the semantics are explicitly
// degraded-but-alive:
//
//   - Migration is best-effort. A batch that cannot reach a peer is
//     dropped and counted (Result.Net, surfaced through DeadLettered);
//     evolution never blocks on the wire.
//   - An island that loses peers keeps evolving solo. Peer-liveness
//     transitions from the transport feed a supervise.Router over the
//     island topology, so migration reroutes around a partitioned or
//     crashed peer exactly the way the in-process supervisor routes
//     around a dead deme — and, unlike demes, a wire peer that
//     reconnects is revived (Router.MarkAlive) and rejoins the flow.
//   - No global solve broadcast: a wire island stops on its own solve
//     or its generation cap. Cross-process termination is the driver's
//     job (cmd/pgaisland exits; the peers' sends to it dead-letter).

import (
	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/rng"
	"pga/internal/supervise"
	"pga/internal/topology"
	"pga/internal/transport"
)

// WireConfig configures one island of a multi-process run.
type WireConfig struct {
	// Self is this island's id in [0, Topology.Size()).
	Self int
	// Topology is the full inter-island graph (required); only the
	// healed neighbour view of Self is used locally.
	Topology topology.Topology
	// Endpoint carries migrant batches (required). If it reports peer
	// liveness (transport.LivenessReporter), down/up transitions heal
	// and re-heal the migration routes.
	Endpoint transport.Endpoint
	// Policy is the migration policy (defaults applied).
	Policy migration.Policy
	// Engine is this island's evolution engine (required).
	Engine ga.Engine
	// MigRNG is this island's private migration stream (required; see
	// WireStreams for the split that matches the in-process model).
	MigRNG *rng.Source
	// MaxGens caps the run.
	MaxGens int
	// Trace records per-generation trace points.
	Trace bool
	// Observers receive the run-lifecycle hooks.
	Observers []engine.Observer
}

// WireStreams splits the master seed exactly the way the in-process
// model's New does — engine stream then migration stream, per deme in
// id order — and returns island self's pair. A wire run over n islands
// with seed s therefore gives every island the same private streams its
// deme would have had in-process.
func WireStreams(seed uint64, n, self int) (engineRNG, migRNG *rng.Source) {
	master := rng.New(seed)
	for i := 0; i < n; i++ {
		er := master.Split()
		mr := master.Split()
		if i == self {
			engineRNG, migRNG = er, mr
		}
	}
	return engineRNG, migRNG
}

// wireDeme is the engine.Stepper of one wire-mode island.
type wireDeme struct {
	cfg    *WireConfig
	e      ga.Engine
	router *supervise.Router
	dir    core.Direction
}

// Step implements engine.Stepper: evolve, then (when due) emigrate
// over the healed routes and integrate whatever the wire delivered.
func (d *wireDeme) Step(g int) engine.StepInfo {
	var info engine.StepInfo
	d.e.Step()
	p := d.cfg.Policy
	if p.Due(g) {
		nbrs := d.router.Neighbors(d.cfg.Self)
		if len(nbrs) > 0 {
			out := p.Select.Pick(d.e.Population(), d.dir, p.Count, d.cfg.MigRNG)
			for _, nbr := range nbrs {
				if nbr == d.cfg.Self {
					continue
				}
				if d.cfg.Endpoint.Send(nbr, migration.CloneBatch(out)) {
					info.Migrations++
				}
			}
		}
		for {
			batch, ok := d.cfg.Endpoint.Recv()
			if !ok {
				break
			}
			p.Replace.Integrate(d.e.Population(), d.dir, batch, d.cfg.MigRNG)
		}
	}
	return info
}

// Best implements engine.Stepper.
func (d *wireDeme) Best() (*core.Individual, float64) {
	pop := d.e.Population()
	if i := pop.Best(d.dir); i >= 0 {
		return pop.Members[i], pop.Members[i].Fitness
	}
	return nil, d.dir.Worst()
}

// Evaluations implements engine.Stepper.
func (d *wireDeme) Evaluations() int64 { return d.e.Evaluations() }

// Direction implements engine.Stepper.
func (d *wireDeme) Direction() core.Direction { return d.dir }

// MeanFitness implements engine.MeanReporter.
func (d *wireDeme) MeanFitness() float64 {
	sum, n := 0.0, 0
	for _, ind := range d.e.Population().Members {
		if ind.Evaluated {
			sum += ind.Fitness
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunWire runs one island over its transport endpoint until it solves
// or reaches MaxGens. The returned Result maps transport accounting
// onto the supervision fields: DeadLettered counts transport-level
// batch losses (every batch that never reached a peer) and Restarts
// counts peer-link reconnects — the wire analogue of a deme restart.
func RunWire(cfg WireConfig) *Result {
	if cfg.Topology == nil {
		panic("island: WireConfig.Topology is required")
	}
	if cfg.Endpoint == nil {
		panic("island: WireConfig.Endpoint is required")
	}
	if cfg.Engine == nil {
		panic("island: WireConfig.Engine is required")
	}
	if cfg.MigRNG == nil {
		panic("island: WireConfig.MigRNG is required")
	}
	cfg.Policy = cfg.Policy.WithDefaults()

	router := supervise.NewRouter(cfg.Topology)
	if lr, ok := cfg.Endpoint.(transport.LivenessReporter); ok {
		lr.SetPeerStateHook(func(peer int, up bool) {
			if up {
				router.MarkAlive(peer)
			} else {
				router.MarkDead(peer)
			}
		})
	}

	d := &wireDeme{
		cfg:    &cfg,
		e:      cfg.Engine,
		router: router,
		dir:    cfg.Engine.Problem().Direction(),
	}
	res := &Result{}
	ta, _ := cfg.Engine.Problem().(core.TargetAware)
	totals := engine.Loop(d, engine.Options{
		Stop:              core.MaxGenerations(cfg.MaxGens),
		Target:            ta,
		HaltOnSolve:       true,
		InitialSolve:      true,
		Trace:             cfg.Trace,
		InitialTracePoint: cfg.Trace,
		Observers:         cfg.Observers,
	}, &res.RunStats)
	res.Migrations = totals.Migrations
	res.PerDemeBest = []float64{d.e.Population().BestFitness(d.dir)}
	res.Net = cfg.Endpoint.Stats()
	res.DeadLettered = res.Net.Dropped
	res.Restarts = res.Net.Reconnects
	res.DeadDemes = router.Dead()
	return res
}
