package island

import (
	"sync"
	"sync/atomic"
	"time"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/supervise"
)

// This file holds the supervised variants of RunParallel — the runtime
// behind Config.Resilience. They mirror runParallelSync/runParallelAsync
// but route every deme step through a supervise.Supervisor: panics are
// recovered into restarts from checkpoint, hung steps are abandoned on a
// heartbeat deadline, and demes that exhaust their restart budget are
// declared dead, frozen at their last checkpoint and routed around by a
// healed topology (Gagné et al.'s transparency/robustness/adaptivity at
// the island level; survey §4).

// failureKind maps a step outcome to its failure class.
func failureKind(out supervise.StepOutcome) supervise.FailureKind {
	if out.Status == supervise.StepTimedOut {
		return supervise.FailureTimeout
	}
	return supervise.FailurePanic
}

// retireDeme records a dead deme's frozen population so statistics never
// touch its abandoned engine again.
func (m *Model) retireDeme(i int, frozen *core.Population) {
	if frozen == nil {
		frozen = core.NewPopulation(0)
	}
	m.deadPops[i] = frozen
}

// runParallelSyncSupervised: barrier per generation, central migration,
// every step supervised. Failed demes retry the *current* generation
// after restoring their checkpoint (the barrier cannot roll the other
// demes back), so a transient fault costs one deme its progress since the
// last checkpoint and nobody else anything.
func (m *Model) runParallelSyncSupervised(maxGens int, trace bool, sup *supervise.Supervisor) *Result {
	start := time.Now()
	res := &Result{}
	ta, hasTarget := m.problem.(core.TargetAware)
	router := sup.Router()
	n := len(m.engines)

	// Generation-0 checkpoint: every deme can be restored from the
	// moment the run starts.
	for i := 0; i < n; i++ {
		_ = sup.Checkpoint(i, m.engines[i].Population(), 0, m.engines[i].Evaluations())
	}

	best, bestFit := m.globalBest()
	gen := 0
	var epochs int64
	outcomes := make([]supervise.StepOutcome, n)
	for ; gen < maxGens && router.AliveCount() > 0; gen++ {
		g := gen + 1
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			if !router.Alive(i) {
				continue
			}
			wg.Add(1)
			go func(i int, e ga.Engine) {
				defer wg.Done()
				outcomes[i] = sup.RunStep(i, g, e)
			}(i, m.engines[i])
		}
		wg.Wait()

		// Serial recovery pass, deme order: restore-and-retry the failed
		// generation until it completes or the deme's budget runs out.
		for i := 0; i < n; i++ {
			if !router.Alive(i) {
				continue
			}
			for outcomes[i].Status != supervise.StepOK {
				eng, frozen, ok := sup.Restart(i, g, failureKind(outcomes[i]), outcomes[i].Err)
				if !ok {
					m.retireDeme(i, frozen)
					break
				}
				m.engines[i] = eng
				outcomes[i] = sup.RunStep(i, g, eng)
			}
		}

		if m.cfg.Policy.Due(g) {
			res.Migrations += m.exchangeOn(router)
			epochs++
			if m.maybeRewire(epochs) {
				router.Refresh()
			}
		}
		if sup.CheckpointDue(g) {
			for i := 0; i < n; i++ {
				if router.Alive(i) {
					_ = sup.Checkpoint(i, m.engines[i].Population(), g, m.engines[i].Evaluations())
				}
			}
		}

		nb, nf := m.globalBest()
		if m.dir.Better(nf, bestFit) {
			best, bestFit = nb, nf
		}
		if trace {
			res.Trace = append(res.Trace, core.TracePoint{Generation: g, Evaluations: m.totalEvaluations(), Best: bestFit, Mean: m.meanFitness()})
		}
		if hasTarget && ta.Solved(bestFit) {
			res.Solved = true
			res.SolvedAtEval = m.totalEvaluations()
			res.SolvedAtGen = g
			gen++
			break
		}
	}
	m.finish(res, best, bestFit, gen, start)
	return res
}

// pendingBatch is an undelivered async migrant batch awaiting retry.
type pendingBatch struct {
	dest     int
	batch    []*core.Individual
	attempts int
}

// runParallelAsyncSupervised: free-running supervised demes. Each worker
// goroutine is its own supervisor loop — a failed step restores the
// deme's checkpoint and resumes from the checkpointed generation
// (re-doing the lost work), and a dead deme simply leaves the loop while
// the survivors route around it. Undeliverable migrant batches are
// retried on later epochs and dead-lettered after their retry budget
// instead of being dropped silently.
func (m *Model) runParallelAsyncSupervised(maxGens int, sup *supervise.Supervisor) *Result {
	start := time.Now()
	res := &Result{}
	ta, hasTarget := m.problem.(core.TargetAware)
	p := m.cfg.Policy
	n := len(m.engines)
	router := sup.Router()
	maxRetries := sup.Config().MaxSendRetries

	inbox := make([]chan []*core.Individual, n)
	for i := range inbox {
		inbox[i] = make(chan []*core.Individual, p.Buffer)
	}
	var solved atomic.Bool
	var solvedGen atomic.Int64
	var migrations atomic.Int64
	gens := make([]int, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := m.engines[i]
			mr := m.migRNGs[i]
			_ = sup.Checkpoint(i, e.Population(), 0, e.Evaluations())

			var pending []pendingBatch
			// Batches still pending when the worker exits — run over,
			// deme solved, or deme dead — are lost traffic: dead-letter
			// them so the counters account for every batch that never
			// arrived.
			defer func() {
				for range pending {
					sup.DeadLetter(1)
				}
			}()
			// deliver attempts one non-blocking send, dead-lettering
			// batches whose receiver died or whose retries ran out.
			deliver := func(pb pendingBatch) {
				if !router.Alive(pb.dest) {
					sup.DeadLetter(1)
					return
				}
				select {
				case inbox[pb.dest] <- pb.batch:
					migrations.Add(1)
				default:
					if pb.attempts >= maxRetries {
						sup.DeadLetter(1)
					} else {
						pb.attempts++
						pending = append(pending, pb)
					}
				}
			}

			for g := 1; g <= maxGens; g++ {
				if solved.Load() {
					return
				}
				out := sup.RunStep(i, g, e)
				if out.Status != supervise.StepOK {
					eng, frozen, ok := sup.Restart(i, g, failureKind(out), out.Err)
					if !ok {
						m.retireDeme(i, frozen)
						return
					}
					resume := sup.ResumeGen(i)
					e = eng
					m.engines[i] = eng
					g = resume // loop increment resumes at resume+1
					continue
				}
				gens[i] = g
				if hasTarget {
					if f := e.Population().BestFitness(m.dir); ta.Solved(f) {
						if solved.CompareAndSwap(false, true) {
							solvedGen.Store(int64(g))
						}
						return
					}
				}
				if p.Due(g) {
					// Retry queued batches first (oldest first), then
					// emigrate fresh clones over the healed topology.
					queued := pending
					pending = pending[len(pending):]
					for _, pb := range queued {
						deliver(pb)
					}
					nbrs := router.Neighbors(i)
					if len(nbrs) > 0 {
						out := p.Select.Pick(e.Population(), m.dir, p.Count, mr)
						for _, nbr := range nbrs {
							batch := make([]*core.Individual, len(out))
							for k, ind := range out {
								batch[k] = ind.Clone()
							}
							deliver(pendingBatch{dest: nbr, batch: batch, attempts: 1})
						}
					}
					// Immigrate: drain whatever has arrived.
				drain:
					for {
						select {
						case batch := <-inbox[i]:
							p.Replace.Integrate(e.Population(), m.dir, batch, mr)
						default:
							break drain
						}
					}
				}
				if sup.CheckpointDue(g) {
					_ = sup.Checkpoint(i, e.Population(), g, e.Evaluations())
				}
			}
		}(i)
	}
	wg.Wait()

	best, bestFit := m.globalBest()
	res.Migrations = migrations.Load()
	if solved.Load() {
		res.Solved = true
		// As in the unsupervised async mode, the post-stop evaluation
		// total slightly overcounts the instant of solving.
		res.SolvedAtEval = m.totalEvaluations()
		res.SolvedAtGen = int(solvedGen.Load())
	}
	maxGen := 0
	for _, g := range gens {
		if g > maxGen {
			maxGen = g
		}
	}
	m.finish(res, best, bestFit, maxGen, start)
	return res
}
