package island

import (
	"sync"
	"sync/atomic"
	"time"

	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/rng"
	"pga/internal/supervise"
	"pga/internal/transport"
)

// This file holds the supervised variants of RunParallel — the runtime
// behind Config.Resilience. They run the same engine.Loop driver as the
// unsupervised modes but route every deme step through a
// supervise.Supervisor: panics are recovered into restarts from
// checkpoint, hung steps are abandoned on a heartbeat deadline, and demes
// that exhaust their restart budget are declared dead, frozen at their
// last checkpoint and routed around by a healed topology (Gagné et al.'s
// transparency/robustness/adaptivity at the island level; survey §4).
// Checkpoint capture itself rides the loop's OnGeneration observer hook —
// including the generation-0 hook, which is what checkpoints every deme
// before the first step.

// failureKind maps a step outcome to its failure class.
func failureKind(out supervise.StepOutcome) supervise.FailureKind {
	if out.Status == supervise.StepTimedOut {
		return supervise.FailureTimeout
	}
	return supervise.FailurePanic
}

// retireDeme records a dead deme's frozen population so statistics never
// touch its abandoned engine again.
func (m *Model) retireDeme(i int, frozen *core.Population) {
	if frozen == nil {
		frozen = core.NewPopulation(0)
	}
	m.deadPops[i] = frozen
}

// allDead stops a supervised synchronous run when every deme has
// exhausted its restart budget.
type allDead struct{ router *supervise.Router }

// Done implements core.StopCondition.
func (a allDead) Done(core.Status) bool { return a.router.AliveCount() == 0 }

// Reason implements core.StopCondition.
func (a allDead) Reason() string { return "all demes dead" }

// syncCheckpointer is the OnGeneration observer of the supervised
// synchronous mode: on every checkpoint-due generation (including
// generation 0) it snapshots every live deme.
type syncCheckpointer struct {
	m      *Model
	sup    *supervise.Supervisor
	router *supervise.Router
}

// OnGeneration implements engine.Observer.
func (c *syncCheckpointer) OnGeneration(s core.Status) {
	if !c.sup.CheckpointDue(s.Generation) {
		return
	}
	for i := range c.m.engines {
		if s.Generation == 0 || c.router.Alive(i) {
			_ = c.sup.Checkpoint(i, c.m.engines[i].Population(), s.Generation, c.m.engines[i].Evaluations())
		}
	}
}

// OnMigration implements engine.Observer.
func (c *syncCheckpointer) OnMigration(int, int64) {}

// OnRestart implements engine.Observer.
func (c *syncCheckpointer) OnRestart(int, int64) {}

// OnDone implements engine.Observer.
func (c *syncCheckpointer) OnDone(*core.RunStats) {}

// supSyncStepper advances live demes behind a barrier with every step
// supervised. Failed demes retry the *current* generation after restoring
// their checkpoint (the barrier cannot roll the other demes back), so a
// transient fault costs one deme its progress since the last checkpoint
// and nobody else anything.
type supSyncStepper struct {
	modelStepper
	sup      *supervise.Supervisor
	router   *supervise.Router
	outcomes []supervise.StepOutcome
}

// Step implements engine.Stepper.
func (s *supSyncStepper) Step(g int) engine.StepInfo {
	m := s.m
	var info engine.StepInfo
	var wg sync.WaitGroup
	for i := range m.engines {
		if !s.router.Alive(i) {
			continue
		}
		wg.Add(1)
		go func(i int, e ga.Engine) {
			defer wg.Done()
			s.outcomes[i] = s.sup.RunStep(i, g, e)
		}(i, m.engines[i])
	}
	wg.Wait()

	// Serial recovery pass, deme order: restore-and-retry the failed
	// generation until it completes or the deme's budget runs out.
	for i := range m.engines {
		if !s.router.Alive(i) {
			continue
		}
		for s.outcomes[i].Status != supervise.StepOK {
			eng, frozen, ok := s.sup.Restart(i, g, failureKind(s.outcomes[i]), s.outcomes[i].Err)
			if !ok {
				m.retireDeme(i, frozen)
				break
			}
			info.Restarts++
			m.engines[i] = eng
			s.outcomes[i] = s.sup.RunStep(i, g, eng)
		}
	}

	if m.cfg.Policy.Due(g) {
		info.Migrations = m.exchangeOn(s.router)
		s.epochs++
		if m.maybeRewire(s.epochs) {
			s.router.Refresh()
		}
	}
	return info
}

// runParallelSyncSupervised: barrier per generation, central migration
// over the healed topology, checkpoints via the observer hook.
func (m *Model) runParallelSyncSupervised(maxGens int, trace bool, sup *supervise.Supervisor) *Result {
	res := &Result{}
	ta, _ := m.problem.(core.TargetAware)
	router := sup.Router()
	st := &supSyncStepper{
		modelStepper: modelStepper{m: m},
		sup:          sup,
		router:       router,
		outcomes:     make([]supervise.StepOutcome, len(m.engines)),
	}
	totals := engine.Loop(st, engine.Options{
		Stop:        core.AnyOf{core.MaxGenerations(maxGens), allDead{router: router}},
		Target:      ta,
		HaltOnSolve: true,
		Trace:       trace,
		Observers:   []engine.Observer{&syncCheckpointer{m: m, sup: sup, router: router}},
	}, &res.RunStats)
	res.Migrations = totals.Migrations
	m.finish(res)
	return res
}

// pendingBatch is an undelivered async migrant batch awaiting retry.
type pendingBatch struct {
	dest     int
	batch    []*core.Individual
	attempts int
}

// supAsyncDeme is one supervised free-running deme's engine.Stepper: a
// failed step restores the deme's checkpoint and rewinds the loop to the
// checkpointed generation (re-doing the lost work), and a dead deme halts
// its loop while the survivors route around it. Undeliverable migrant
// batches are retried on later epochs and dead-lettered after their retry
// budget instead of being dropped silently.
type supAsyncDeme struct {
	m          *Model
	i          int
	e          ga.Engine
	mr         *rng.Source
	ep         transport.Endpoint
	sup        *supervise.Supervisor
	router     *supervise.Router
	maxRetries int
	pending    []pendingBatch
	solved     *atomic.Bool
	solvedGen  *atomic.Int64
	gens       []int
	ta         core.TargetAware
	delivered  int64
}

// deliver attempts one best-effort endpoint send, dead-lettering
// batches whose receiver died or whose retries ran out.
func (d *supAsyncDeme) deliver(pb pendingBatch) {
	if !d.router.Alive(pb.dest) {
		d.sup.DeadLetter(1)
		return
	}
	if d.ep.Send(pb.dest, pb.batch) {
		d.delivered++
		return
	}
	if pb.attempts >= d.maxRetries {
		d.sup.DeadLetter(1)
	} else {
		pb.attempts++
		//pgalint:ignore boundedres bounded by maxRetries: each batch re-queues at most MaxSendRetries times before dead-lettering, and Step drains pending every generation
		d.pending = append(d.pending, pb)
	}
}

// Step implements engine.Stepper.
func (d *supAsyncDeme) Step(g int) engine.StepInfo {
	var info engine.StepInfo
	out := d.sup.RunStep(d.i, g, d.e)
	if out.Status != supervise.StepOK {
		eng, frozen, ok := d.sup.Restart(d.i, g, failureKind(out), out.Err)
		if !ok {
			d.m.retireDeme(d.i, frozen)
			info.Rewound, info.ResumeAt = true, g-1
			info.Halt = true
			return info
		}
		d.e = eng
		d.m.engines[d.i] = eng
		info.Restarts = 1
		info.Rewound, info.ResumeAt = true, d.sup.ResumeGen(d.i)
		return info
	}
	d.gens[d.i] = g
	if d.ta != nil {
		if f := d.e.Population().BestFitness(d.m.dir); d.ta.Solved(f) {
			if d.solved.CompareAndSwap(false, true) {
				d.solvedGen.Store(int64(g))
			}
			info.Halt = true
			return info
		}
	}
	p := d.m.cfg.Policy
	if p.Due(g) {
		// Retry queued batches first (oldest first), then emigrate fresh
		// clones over the healed topology.
		queued := d.pending
		d.pending = d.pending[len(d.pending):]
		before := d.delivered
		for _, pb := range queued {
			d.deliver(pb)
		}
		nbrs := d.router.Neighbors(d.i)
		if len(nbrs) > 0 {
			out := p.Select.Pick(d.e.Population(), d.m.dir, p.Count, d.mr)
			for _, nbr := range nbrs {
				d.deliver(pendingBatch{dest: nbr, batch: migration.CloneBatch(out), attempts: 1})
			}
		}
		info.Migrations = d.delivered - before
		// Immigrate: drain whatever has arrived.
		for {
			batch, ok := d.ep.Recv()
			if !ok {
				break
			}
			p.Replace.Integrate(d.e.Population(), d.m.dir, batch, d.mr)
		}
	}
	return info
}

// Best implements engine.Stepper (unused: the deme loops run SkipBest).
func (d *supAsyncDeme) Best() (*core.Individual, float64) { return nil, d.m.dir.Worst() }

// Evaluations implements engine.Stepper.
func (d *supAsyncDeme) Evaluations() int64 { return d.e.Evaluations() }

// Direction implements engine.Stepper.
func (d *supAsyncDeme) Direction() core.Direction { return d.m.dir }

// OnGeneration implements engine.Observer: the deme checkpoints itself on
// every checkpoint-due generation, including generation 0 before the
// first step (rewound restart iterations never reach this hook, so a
// restart does not re-checkpoint the restored state).
func (d *supAsyncDeme) OnGeneration(s core.Status) {
	if d.sup.CheckpointDue(s.Generation) {
		_ = d.sup.Checkpoint(d.i, d.e.Population(), s.Generation, d.e.Evaluations())
	}
}

// OnMigration implements engine.Observer.
func (d *supAsyncDeme) OnMigration(int, int64) {}

// OnRestart implements engine.Observer.
func (d *supAsyncDeme) OnRestart(int, int64) {}

// OnDone implements engine.Observer: batches still pending when the
// worker exits — run over, deme solved, or deme dead — are lost traffic:
// dead-letter them so the counters account for every batch that never
// arrived.
func (d *supAsyncDeme) OnDone(*core.RunStats) {
	for range d.pending {
		d.sup.DeadLetter(1)
	}
	d.pending = nil
}

// runParallelAsyncSupervised: free-running supervised demes, one
// engine.Loop per deme goroutine with the deme itself as the
// checkpoint/dead-letter observer.
func (m *Model) runParallelAsyncSupervised(maxGens int, sup *supervise.Supervisor) *Result {
	start := time.Now()
	res := &Result{}
	ta, _ := m.problem.(core.TargetAware)
	p := m.cfg.Policy
	n := len(m.engines)
	router := sup.Router()
	maxRetries := sup.Config().MaxSendRetries

	eps := transport.NewLoopback(n, p.Buffer)
	var solved atomic.Bool
	var solvedGen atomic.Int64
	gens := make([]int, n)
	totals := make([]engine.Totals, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := &supAsyncDeme{
				m: m, i: i, e: m.engines[i], mr: m.migRNGs[i],
				ep: eps[i], sup: sup, router: router, maxRetries: maxRetries,
				solved: &solved, solvedGen: &solvedGen, gens: gens, ta: ta,
			}
			var stats core.RunStats
			totals[i] = engine.Loop(d, engine.Options{
				Stop:      demeHalt{solved: &solved, max: maxGens},
				SkipBest:  true,
				Observers: []engine.Observer{d},
			}, &stats)
		}(i)
	}
	wg.Wait()

	for _, ep := range eps {
		res.Net.Add(ep.Stats())
	}
	m.finishAsync(res, totals, gens, &solved, &solvedGen)
	res.Elapsed = time.Since(start)
	return res
}
