// Package island implements the coarse-grained (island / distributed /
// multi-deme) parallel genetic algorithm — the model the survey calls the
// dominant PGA form, introduced by Tanese (1987) and Pettey (1987) and
// named by Manderick & Spiessens / Gordon / Adamidis (§2).
//
// Each deme runs an independent evolution engine (generational,
// steady-state or cellular — see internal/ga and internal/cellular) and
// periodically exchanges individuals with its topological neighbours under
// a migration.Policy.
//
// Two execution modes are provided:
//
//   - RunSequential: all demes advance in lockstep inside one goroutine.
//     Fully deterministic; the numeric experiments use this mode.
//   - RunParallel: one goroutine per deme, migrants carried by channels —
//     the CSP analogue of the MPI/PVM message passing used by the
//     libraries in the survey's Table 1. Synchronous policies barrier
//     every generation; asynchronous policies exchange through bounded
//     non-blocking buffers (Alba & Troya 2001's async model).
package island

import (
	"sync"
	"sync/atomic"
	"time"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/rng"
	"pga/internal/supervise"
	"pga/internal/topology"
)

// Config describes an island-model run.
type Config struct {
	// Topology is the inter-deme graph; its Size is the deme count
	// (required).
	Topology topology.Topology
	// Policy is the migration policy (defaults applied via WithDefaults).
	Policy migration.Policy
	// NewEngine builds deme i's evolution engine from its private random
	// stream (required). Engines must not be shared between demes.
	NewEngine func(deme int, r *rng.Source) ga.Engine
	// RewireEvery rewires a dynamic topology (one implementing
	// Rewire()) after every N migration epochs; 0 never rewires. It has
	// effect only in the deterministic modes (sequential and
	// sync-parallel) — the survey's §1.1 "static and dynamic topologies".
	RewireEvery int
	// Seed seeds the master random stream from which every deme's engine
	// and migration streams are split.
	Seed uint64
	// Resilience enables the supervision layer for RunParallel: panics
	// in a deme's step are recovered, crashed demes restart from
	// periodic checkpoints, hung demes are detected by heartbeat and the
	// topology is healed around demes that exhaust their restart budget
	// (see internal/supervise). nil runs unsupervised (a deme panic is a
	// process panic, exactly as before).
	Resilience *supervise.Config
	// Faults optionally injects deterministic failures into a supervised
	// run — the test harness for Resilience. Ignored when Resilience is
	// nil.
	Faults *supervise.FaultPlan
}

// rewirable is implemented by dynamic topologies (topology.Dynamic).
type rewirable interface{ Rewire() }

// Result summarises an island-model run.
type Result struct {
	// Best is the best individual found across all demes.
	Best *core.Individual
	// BestFitness is Best's fitness.
	BestFitness float64
	// Generations is the number of island generations completed (the
	// maximum over demes in parallel mode).
	Generations int
	// Evaluations is the total fitness evaluations across all demes.
	Evaluations int64
	// Solved reports whether the problem's known optimum was reached.
	Solved bool
	// SolvedAtEval is the total evaluation count when first solved.
	SolvedAtEval int64
	// SolvedAtGen is the island generation when first solved.
	SolvedAtGen int
	// Migrations counts migrant batches delivered (one batch = Count
	// individuals sent over one link).
	Migrations int64
	// Elapsed is the wall-clock duration.
	Elapsed time.Duration
	// Trace is the global best per generation (sequential mode, and
	// sync-parallel mode, when tracing was requested).
	Trace []core.TracePoint
	// PerDemeBest is the final best fitness of each deme (a dead deme
	// reports its last checkpoint).
	PerDemeBest []float64

	// Supervision counters (populated only when Config.Resilience is
	// set; see internal/supervise).

	// Restarts counts deme restarts from checkpoint.
	Restarts int64
	// PanicsRecovered counts step panics converted into restarts.
	PanicsRecovered int64
	// HeartbeatTimeouts counts missed per-generation heartbeats.
	HeartbeatTimeouts int64
	// DeadLettered counts async migrant batches dropped after their
	// retry budget.
	DeadLettered int64
	// DeadDemes lists demes that exhausted their restart budget and were
	// routed around.
	DeadDemes []int
	// Failures is the ordered log of typed deme-failure events.
	Failures []supervise.DemeFailure
}

// Model is an instantiated island system.
type Model struct {
	cfg        Config
	engines    []ga.Engine
	engineRNGs []*rng.Source
	migRNGs    []*rng.Source
	restartRNG *rng.Source
	dir        core.Direction
	problem    core.Problem

	// Supervised-run state: sup is the active supervisor and deadPops
	// holds the frozen last-checkpoint population of each dead deme (its
	// abandoned engine may still be mutated by a hung goroutine and must
	// never be read again).
	sup      *supervise.Supervisor
	deadPops []*core.Population

	// outgoing is the pooled per-deme emigrant list of synchronous
	// exchanges (the migrant clones themselves are necessarily fresh —
	// they enter the receiving populations).
	outgoing [][]*core.Individual
}

// New builds the demes. Deme i's engine stream and migration stream are
// split deterministically from the master seed, so sequential and
// sync-parallel runs are reproducible.
func New(cfg Config) *Model {
	if cfg.Topology == nil {
		panic("island: Config.Topology is required")
	}
	if cfg.NewEngine == nil {
		panic("island: Config.NewEngine is required")
	}
	cfg.Policy = cfg.Policy.WithDefaults()
	n := cfg.Topology.Size()
	if n < 1 {
		panic("island: topology has no demes")
	}
	master := rng.New(cfg.Seed)
	m := &Model{
		cfg:        cfg,
		engines:    make([]ga.Engine, n),
		engineRNGs: make([]*rng.Source, n),
		migRNGs:    make([]*rng.Source, n),
	}
	for i := 0; i < n; i++ {
		m.engineRNGs[i] = master.Split()
		m.migRNGs[i] = master.Split()
		m.engines[i] = cfg.NewEngine(i, m.engineRNGs[i])
	}
	// The restart stream is split last, so its presence does not perturb
	// the per-deme streams of existing seeded runs.
	m.restartRNG = master.Split()
	m.problem = m.engines[0].Problem()
	m.dir = m.problem.Direction()
	return m
}

// Demes returns the number of demes.
func (m *Model) Demes() int { return len(m.engines) }

// Engines exposes the deme engines (read-only use intended; tests and
// instrumentation).
func (m *Model) Engines() []ga.Engine { return m.engines }

// demePop returns the population used for deme i's statistics: the live
// engine's, or — for a deme declared dead under supervision — its frozen
// last-checkpoint population (the abandoned engine may still be mutated
// by a hung goroutine and is never read again).
func (m *Model) demePop(i int) *core.Population {
	if m.deadPops != nil && m.deadPops[i] != nil {
		return m.deadPops[i]
	}
	return m.engines[i].Population()
}

// totalEvaluations sums evaluations across demes. Dead demes contribute
// their last checkpointed count (accumulated by the supervisor), as do
// the replaced engines of restarted demes.
func (m *Model) totalEvaluations() int64 {
	var t int64
	if m.sup != nil {
		t = m.sup.RetiredEvaluations()
	}
	for i, e := range m.engines {
		if m.deadPops != nil && m.deadPops[i] != nil {
			continue
		}
		t += e.Evaluations()
	}
	return t
}

// globalBestRef returns the best individual across demes as a live
// reference into its deme (valid only until the next step) — the
// allocation-free form used by the per-generation run loops.
func (m *Model) globalBestRef() (*core.Individual, float64) {
	bestFit := m.dir.Worst()
	var best *core.Individual
	for i := range m.engines {
		pop := m.demePop(i)
		if j := pop.Best(m.dir); j >= 0 && m.dir.Better(pop.Members[j].Fitness, bestFit) {
			bestFit = pop.Members[j].Fitness
			best = pop.Members[j]
		}
	}
	return best, bestFit
}

// globalBest returns a clone of the best individual across demes.
func (m *Model) globalBest() (*core.Individual, float64) {
	best, bestFit := m.globalBestRef()
	if best != nil {
		best = best.Clone()
	}
	return best, bestFit
}

// maybeRewire rewires a dynamic topology on schedule, reporting whether
// it did. epoch counts completed migration epochs.
func (m *Model) maybeRewire(epoch int64) bool {
	if m.cfg.RewireEvery <= 0 || epoch == 0 || epoch%int64(m.cfg.RewireEvery) != 0 {
		return false
	}
	if rw, ok := m.cfg.Topology.(rewirable); ok {
		rw.Rewire()
		return true
	}
	return false
}

// exchange performs one synchronous migration epoch over the configured
// topology.
func (m *Model) exchange() int64 { return m.exchangeOn(m.cfg.Topology) }

// exchangeOn performs one synchronous migration epoch over topo: every
// deme's emigrants are picked from the pre-exchange populations, then
// delivered. Returns the number of batches sent. Demes with no outgoing
// links (including dead demes under a healed Router, whose lists are
// empty and who appear in no live deme's list) take no part.
func (m *Model) exchangeOn(topo topology.Topology) int64 {
	p := m.cfg.Policy
	n := len(m.engines)
	if m.outgoing == nil {
		m.outgoing = make([][]*core.Individual, n)
	}
	outgoing := m.outgoing
	for i := 0; i < n; i++ {
		outgoing[i] = nil
		if len(topo.Neighbors(i)) == 0 {
			continue
		}
		outgoing[i] = p.Select.Pick(m.engines[i].Population(), m.dir, p.Count, m.migRNGs[i])
	}
	var batches int64
	for i := 0; i < n; i++ {
		for _, nbr := range topo.Neighbors(i) {
			if len(outgoing[i]) == 0 {
				continue
			}
			// Each neighbour receives its own clones.
			migrants := make([]*core.Individual, len(outgoing[i]))
			for k, ind := range outgoing[i] {
				migrants[k] = ind.Clone()
			}
			p.Replace.Integrate(m.engines[nbr].Population(), m.dir, migrants, m.migRNGs[nbr])
			batches++
		}
	}
	return batches
}

// RunSequential advances all demes in lockstep until stop fires,
// performing synchronous migration whenever the policy is due. It is fully
// deterministic for a given Config.
func (m *Model) RunSequential(stop core.StopCondition, trace bool) *Result {
	if stop == nil {
		panic("island: stop condition required")
	}
	start := time.Now()
	res := &Result{}
	ta, hasTarget := m.problem.(core.TargetAware)

	// best is a reusable tracker individual, copied over (not re-cloned)
	// on every improving generation.
	best, bestFit := m.globalBest()
	checkSolved := func(gen int) {
		if hasTarget && !res.Solved && ta.Solved(bestFit) {
			res.Solved = true
			res.SolvedAtEval = m.totalEvaluations()
			res.SolvedAtGen = gen
		}
	}
	checkSolved(0)

	status := core.Status{Generation: 0, Evaluations: m.totalEvaluations(), BestFitness: bestFit, Improved: true}
	if trace {
		res.Trace = append(res.Trace, core.TracePoint{Generation: 0, Evaluations: status.Evaluations, Best: bestFit, Mean: m.meanFitness()})
	}

	var epochs int64
	for !stop.Done(status) {
		for _, e := range m.engines {
			e.Step()
		}
		status.Generation++
		if m.cfg.Policy.Due(status.Generation) {
			res.Migrations += m.exchange()
			epochs++
			m.maybeRewire(epochs)
		}
		nb, nf := m.globalBestRef()
		status.Improved = m.dir.Better(nf, bestFit)
		if status.Improved {
			bestFit = nf
			if best == nil {
				best = nb.Clone()
			} else {
				best.CopyFrom(nb)
			}
		}
		status.BestFitness = bestFit
		status.Evaluations = m.totalEvaluations()
		checkSolved(status.Generation)
		if trace {
			res.Trace = append(res.Trace, core.TracePoint{Generation: status.Generation, Evaluations: status.Evaluations, Best: bestFit, Mean: m.meanFitness()})
		}
	}

	m.finish(res, best, bestFit, status.Generation, start)
	return res
}

// meanFitness returns the mean fitness over all demes' members.
func (m *Model) meanFitness() float64 {
	sum, n := 0.0, 0
	for i := range m.engines {
		for _, ind := range m.demePop(i).Members {
			if ind.Evaluated {
				sum += ind.Fitness
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// finish fills the common tail of a Result.
func (m *Model) finish(res *Result, best *core.Individual, bestFit float64, gens int, start time.Time) {
	res.Best = best
	res.BestFitness = bestFit
	res.Generations = gens
	res.Evaluations = m.totalEvaluations()
	res.Elapsed = time.Since(start)
	res.PerDemeBest = make([]float64, len(m.engines))
	for i := range m.engines {
		res.PerDemeBest[i] = m.demePop(i).BestFitness(m.dir)
	}
	if m.sup != nil {
		res.Restarts = m.sup.Restarts()
		res.PanicsRecovered = m.sup.PanicsRecovered()
		res.HeartbeatTimeouts = m.sup.HeartbeatTimeouts()
		res.DeadLettered = m.sup.DeadLettered()
		res.DeadDemes = m.sup.Router().Dead()
		res.Failures = m.sup.Failures()
	}
}

// RunParallel executes the island model with one goroutine per deme for at
// most maxGens island generations, stopping early when the problem's known
// optimum is found. Policy.Sync selects barriered generations (globally
// deterministic); otherwise demes free-run and exchange migrants through
// bounded non-blocking channels (migrant arrival order is scheduling
// dependent — the only permitted nondeterminism in the library).
func (m *Model) RunParallel(maxGens int, trace bool) *Result {
	if m.cfg.Resilience != nil {
		sup := supervise.New(*m.cfg.Resilience, m.cfg.Faults, m.cfg.Topology,
			m.cfg.NewEngine, m.restartRNG)
		for i := range m.engines {
			sup.Attach(i, m.engineRNGs[i])
		}
		m.sup = sup
		m.deadPops = make([]*core.Population, len(m.engines))
		if m.cfg.Policy.Sync {
			return m.runParallelSyncSupervised(maxGens, trace, sup)
		}
		return m.runParallelAsyncSupervised(maxGens, sup)
	}
	if m.cfg.Policy.Sync {
		return m.runParallelSync(maxGens, trace)
	}
	return m.runParallelAsync(maxGens)
}

// runParallelSync: barrier per generation, central migration.
func (m *Model) runParallelSync(maxGens int, trace bool) *Result {
	start := time.Now()
	res := &Result{}
	ta, hasTarget := m.problem.(core.TargetAware)
	best, bestFit := m.globalBest()

	gen := 0
	var epochs int64
	for ; gen < maxGens; gen++ {
		var wg sync.WaitGroup
		for _, e := range m.engines {
			wg.Add(1)
			go func(e ga.Engine) {
				defer wg.Done()
				e.Step()
			}(e)
		}
		wg.Wait()
		g := gen + 1
		if m.cfg.Policy.Due(g) {
			res.Migrations += m.exchange()
			epochs++
			m.maybeRewire(epochs)
		}
		nb, nf := m.globalBestRef()
		if m.dir.Better(nf, bestFit) {
			bestFit = nf
			if best == nil {
				best = nb.Clone()
			} else {
				best.CopyFrom(nb)
			}
		}
		if trace {
			res.Trace = append(res.Trace, core.TracePoint{Generation: g, Evaluations: m.totalEvaluations(), Best: bestFit, Mean: m.meanFitness()})
		}
		if hasTarget && ta.Solved(bestFit) {
			res.Solved = true
			res.SolvedAtEval = m.totalEvaluations()
			res.SolvedAtGen = g
			gen++
			break
		}
	}
	m.finish(res, best, bestFit, gen, start)
	return res
}

// runParallelAsync: free-running demes with buffered channel migration.
func (m *Model) runParallelAsync(maxGens int) *Result {
	start := time.Now()
	res := &Result{}
	ta, hasTarget := m.problem.(core.TargetAware)
	p := m.cfg.Policy
	n := len(m.engines)

	inbox := make([]chan []*core.Individual, n)
	for i := range inbox {
		inbox[i] = make(chan []*core.Individual, p.Buffer)
	}
	var solved atomic.Bool
	var solvedGen atomic.Int64
	var migrations atomic.Int64
	gens := make([]int, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := m.engines[i]
			mr := m.migRNGs[i]
			nbrs := m.cfg.Topology.Neighbors(i)
			for g := 1; g <= maxGens; g++ {
				if solved.Load() {
					return
				}
				e.Step()
				gens[i] = g
				if hasTarget {
					if f := e.Population().BestFitness(m.dir); ta.Solved(f) {
						if solved.CompareAndSwap(false, true) {
							solvedGen.Store(int64(g))
						}
						return
					}
				}
				if p.Due(g) {
					// Emigrate: non-blocking send of a fresh clone batch per link.
					if len(nbrs) > 0 {
						out := p.Select.Pick(e.Population(), m.dir, p.Count, mr)
						for _, nbr := range nbrs {
							batch := make([]*core.Individual, len(out))
							for k, ind := range out {
								batch[k] = ind.Clone()
							}
							select {
							case inbox[nbr] <- batch:
								migrations.Add(1)
							default:
								// Receiver's buffer full: drop, never block
								// evolution (bounded-staleness async model).
							}
						}
					}
					// Immigrate: drain whatever has arrived.
				drain:
					for {
						select {
						case batch := <-inbox[i]:
							p.Replace.Integrate(e.Population(), m.dir, batch, mr)
						default:
							break drain
						}
					}
				}
			}
		}(i)
	}
	wg.Wait()

	best, bestFit := m.globalBest()
	res.Migrations = migrations.Load()
	if solved.Load() {
		res.Solved = true
		// In async mode evaluation counters cannot be snapshotted at the
		// instant of solving without racing other demes; the post-stop
		// total is a slight overcount and is documented as such.
		res.SolvedAtEval = m.totalEvaluations()
		res.SolvedAtGen = int(solvedGen.Load())
	}
	maxGen := 0
	for _, g := range gens {
		if g > maxGen {
			maxGen = g
		}
	}
	m.finish(res, best, bestFit, maxGen, start)
	return res
}
