// Package island implements the coarse-grained (island / distributed /
// multi-deme) parallel genetic algorithm — the model the survey calls the
// dominant PGA form, introduced by Tanese (1987) and Pettey (1987) and
// named by Manderick & Spiessens / Gordon / Adamidis (§2).
//
// Each deme runs an independent evolution engine (generational,
// steady-state or cellular — see internal/ga and internal/cellular) and
// periodically exchanges individuals with its topological neighbours under
// a migration.Policy.
//
// Two execution modes are provided:
//
//   - RunSequential: all demes advance in lockstep inside one goroutine.
//     Fully deterministic; the numeric experiments use this mode.
//   - RunParallel: one goroutine per deme, migrants carried by channels —
//     the CSP analogue of the MPI/PVM message passing used by the
//     libraries in the survey's Table 1. Synchronous policies barrier
//     every generation; asynchronous policies exchange through bounded
//     non-blocking buffers (Alba & Troya 2001's async model).
package island

import (
	"sync"
	"sync/atomic"
	"time"

	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/rng"
	"pga/internal/supervise"
	"pga/internal/topology"
	"pga/internal/transport"
)

// Config describes an island-model run.
type Config struct {
	// Topology is the inter-deme graph; its Size is the deme count
	// (required).
	Topology topology.Topology
	// Policy is the migration policy (defaults applied via WithDefaults).
	Policy migration.Policy
	// NewEngine builds deme i's evolution engine from its private random
	// stream (required). Engines must not be shared between demes.
	NewEngine func(deme int, r *rng.Source) ga.Engine
	// RewireEvery rewires a dynamic topology (one implementing
	// Rewire()) after every N migration epochs; 0 never rewires. It has
	// effect only in the deterministic modes (sequential and
	// sync-parallel) — the survey's §1.1 "static and dynamic topologies".
	RewireEvery int
	// Seed seeds the master random stream from which every deme's engine
	// and migration streams are split.
	Seed uint64
	// Resilience enables the supervision layer for RunParallel: panics
	// in a deme's step are recovered, crashed demes restart from
	// periodic checkpoints, hung demes are detected by heartbeat and the
	// topology is healed around demes that exhaust their restart budget
	// (see internal/supervise). nil runs unsupervised (a deme panic is a
	// process panic, exactly as before).
	Resilience *supervise.Config
	// Faults optionally injects deterministic failures into a supervised
	// run — the test harness for Resilience. Ignored when Resilience is
	// nil.
	Faults *supervise.FaultPlan
}

// rewirable is implemented by dynamic topologies (topology.Dynamic).
type rewirable interface{ Rewire() }

// Result summarises an island-model run. The embedded core.RunStats holds
// the accounting common to every runtime (best, generations, evaluations,
// solve point, elapsed, trace); in asynchronous modes SolvedAtEval is the
// post-stop total and slightly overcounts the instant of solving, because
// other demes' counters cannot be snapshotted without racing them.
type Result struct {
	core.RunStats
	// Migrations counts migrant batches delivered (one batch = Count
	// individuals sent over one link).
	Migrations int64
	// PerDemeBest is the final best fitness of each deme (a dead deme
	// reports its last checkpoint).
	PerDemeBest []float64

	// Supervision counters (populated only when Config.Resilience is
	// set; see internal/supervise).

	// Restarts counts deme restarts from checkpoint.
	Restarts int64
	// PanicsRecovered counts step panics converted into restarts.
	PanicsRecovered int64
	// HeartbeatTimeouts counts missed per-generation heartbeats.
	HeartbeatTimeouts int64
	// DeadLettered counts async migrant batches dropped after their
	// retry budget (wire-mode runs additionally count transport-level
	// losses here; see Net).
	DeadLettered int64
	// Net is the transport-level delivery accounting: the summed
	// endpoint stats of the asynchronous in-process modes, or the
	// single endpoint's stats of a wire-mode run (RunWire). Zero for
	// the sequential and synchronous modes, which migrate centrally.
	Net core.NetStats
	// DeadDemes lists demes that exhausted their restart budget and were
	// routed around.
	DeadDemes []int
	// Failures is the ordered log of typed deme-failure events.
	Failures []supervise.DemeFailure
}

// Model is an instantiated island system.
type Model struct {
	cfg        Config
	engines    []ga.Engine
	engineRNGs []*rng.Source
	migRNGs    []*rng.Source
	restartRNG *rng.Source
	dir        core.Direction
	problem    core.Problem

	// Supervised-run state: sup is the active supervisor and deadPops
	// holds the frozen last-checkpoint population of each dead deme (its
	// abandoned engine may still be mutated by a hung goroutine and must
	// never be read again).
	sup      *supervise.Supervisor
	deadPops []*core.Population

	// outgoing is the pooled per-deme emigrant list of synchronous
	// exchanges (the migrant clones themselves are necessarily fresh —
	// they enter the receiving populations).
	outgoing [][]*core.Individual
}

// New builds the demes. Deme i's engine stream and migration stream are
// split deterministically from the master seed, so sequential and
// sync-parallel runs are reproducible.
func New(cfg Config) *Model {
	if cfg.Topology == nil {
		panic("island: Config.Topology is required")
	}
	if cfg.NewEngine == nil {
		panic("island: Config.NewEngine is required")
	}
	cfg.Policy = cfg.Policy.WithDefaults()
	n := cfg.Topology.Size()
	if n < 1 {
		panic("island: topology has no demes")
	}
	master := rng.New(cfg.Seed)
	m := &Model{
		cfg:     cfg,
		engines: make([]ga.Engine, n),
	}
	m.engineRNGs, m.migRNGs = newDemeStreams(master, n)
	for i := 0; i < n; i++ {
		m.engines[i] = cfg.NewEngine(i, m.engineRNGs[i])
	}
	// The restart stream is split last, so its presence does not perturb
	// the per-deme streams of existing seeded runs.
	m.restartRNG = master.Split()
	m.problem = m.engines[0].Problem()
	m.dir = m.problem.Direction()
	return m
}

// newDemeStreams splits the per-deme RNG streams off the master source:
// engine stream then migration stream, per deme in id order. WireStreams
// performs the identical split for one-island-per-process runs, so a
// wire run reproduces the in-process streams bit-for-bit — the pair is
// declared in DrawPairs and proven shape-identical by pgalint's
// drawparity rule.
func newDemeStreams(master *rng.Source, n int) (engineRNGs, migRNGs []*rng.Source) {
	engineRNGs = make([]*rng.Source, n)
	migRNGs = make([]*rng.Source, n)
	for i := 0; i < n; i++ {
		engineRNGs[i] = master.Split()
		migRNGs[i] = master.Split()
	}
	return engineRNGs, migRNGs
}

// Demes returns the number of demes.
func (m *Model) Demes() int { return len(m.engines) }

// Engines exposes the deme engines (read-only use intended; tests and
// instrumentation).
func (m *Model) Engines() []ga.Engine { return m.engines }

// demePop returns the population used for deme i's statistics: the live
// engine's, or — for a deme declared dead under supervision — its frozen
// last-checkpoint population (the abandoned engine may still be mutated
// by a hung goroutine and is never read again).
func (m *Model) demePop(i int) *core.Population {
	if m.deadPops != nil && m.deadPops[i] != nil {
		return m.deadPops[i]
	}
	return m.engines[i].Population()
}

// totalEvaluations sums evaluations across demes. Dead demes contribute
// their last checkpointed count (accumulated by the supervisor), as do
// the replaced engines of restarted demes.
func (m *Model) totalEvaluations() int64 {
	var t int64
	if m.sup != nil {
		t = m.sup.RetiredEvaluations()
	}
	for i, e := range m.engines {
		if m.deadPops != nil && m.deadPops[i] != nil {
			continue
		}
		t += e.Evaluations()
	}
	return t
}

// globalBestRef returns the best individual across demes as a live
// reference into its deme (valid only until the next step) — the
// allocation-free form used by the per-generation run loops.
func (m *Model) globalBestRef() (*core.Individual, float64) {
	bestFit := m.dir.Worst()
	var best *core.Individual
	for i := range m.engines {
		pop := m.demePop(i)
		if j := pop.Best(m.dir); j >= 0 && m.dir.Better(pop.Members[j].Fitness, bestFit) {
			bestFit = pop.Members[j].Fitness
			best = pop.Members[j]
		}
	}
	return best, bestFit
}

// globalBest returns a clone of the best individual across demes.
func (m *Model) globalBest() (*core.Individual, float64) {
	best, bestFit := m.globalBestRef()
	if best != nil {
		best = best.Clone()
	}
	return best, bestFit
}

// maybeRewire rewires a dynamic topology on schedule, reporting whether
// it did. epoch counts completed migration epochs.
func (m *Model) maybeRewire(epoch int64) bool {
	if m.cfg.RewireEvery <= 0 || epoch == 0 || epoch%int64(m.cfg.RewireEvery) != 0 {
		return false
	}
	if rw, ok := m.cfg.Topology.(rewirable); ok {
		rw.Rewire()
		return true
	}
	return false
}

// exchange performs one synchronous migration epoch over the configured
// topology.
func (m *Model) exchange() int64 { return m.exchangeOn(m.cfg.Topology) }

// exchangeOn performs one synchronous migration epoch over topo: every
// deme's emigrants are picked from the pre-exchange populations, then
// delivered. Returns the number of batches sent. Demes with no outgoing
// links (including dead demes under a healed Router, whose lists are
// empty and who appear in no live deme's list) take no part.
func (m *Model) exchangeOn(topo topology.Topology) int64 {
	p := m.cfg.Policy
	n := len(m.engines)
	if m.outgoing == nil {
		m.outgoing = make([][]*core.Individual, n)
	}
	outgoing := m.outgoing
	for i := 0; i < n; i++ {
		outgoing[i] = nil
		if len(topo.Neighbors(i)) == 0 {
			continue
		}
		outgoing[i] = p.Select.Pick(m.engines[i].Population(), m.dir, p.Count, m.migRNGs[i])
	}
	var batches int64
	for i := 0; i < n; i++ {
		for _, nbr := range topo.Neighbors(i) {
			if len(outgoing[i]) == 0 {
				continue
			}
			// Each neighbour receives its own clones.
			migrants := make([]*core.Individual, len(outgoing[i]))
			for k, ind := range outgoing[i] {
				migrants[k] = ind.Clone()
			}
			p.Replace.Integrate(m.engines[nbr].Population(), m.dir, migrants, m.migRNGs[nbr])
			batches++
		}
	}
	return batches
}

// modelStepper is the engine.Stepper state shared by the lockstep
// (sequential) and barriered (sync-parallel) runners: global best,
// evaluation totals and the migration-epoch counter live here; only the
// way demes advance differs.
type modelStepper struct {
	m      *Model
	epochs int64
}

// migrateDue runs one synchronous migration epoch over topo when the
// policy is due at gen, counting completed epochs for dynamic rewiring.
func (s *modelStepper) migrateDue(gen int) (batches int64) {
	if !s.m.cfg.Policy.Due(gen) {
		return 0
	}
	batches = s.m.exchange()
	s.epochs++
	s.m.maybeRewire(s.epochs)
	return batches
}

// Best implements engine.Stepper.
func (s *modelStepper) Best() (*core.Individual, float64) { return s.m.globalBestRef() }

// Evaluations implements engine.Stepper.
func (s *modelStepper) Evaluations() int64 { return s.m.totalEvaluations() }

// Direction implements engine.Stepper.
func (s *modelStepper) Direction() core.Direction { return s.m.dir }

// MeanFitness implements engine.MeanReporter.
func (s *modelStepper) MeanFitness() float64 { return s.m.meanFitness() }

// lockstepStepper advances every deme in the calling goroutine.
type lockstepStepper struct{ modelStepper }

// Step implements engine.Stepper.
func (s *lockstepStepper) Step(gen int) engine.StepInfo {
	for _, e := range s.m.engines {
		e.Step()
	}
	return engine.StepInfo{Migrations: s.migrateDue(gen)}
}

// RunSequential advances all demes in lockstep until stop fires,
// performing synchronous migration whenever the policy is due. It is fully
// deterministic for a given Config.
func (m *Model) RunSequential(stop core.StopCondition, trace bool) *Result {
	if stop == nil {
		panic("island: stop condition required")
	}
	res := &Result{}
	ta, _ := m.problem.(core.TargetAware)
	totals := engine.Loop(&lockstepStepper{modelStepper{m: m}}, engine.Options{
		Stop:              stop,
		Target:            ta,
		InitialSolve:      true,
		Trace:             trace,
		InitialTracePoint: true,
	}, &res.RunStats)
	res.Migrations = totals.Migrations
	m.finish(res)
	return res
}

// meanFitness returns the mean fitness over all demes' members.
func (m *Model) meanFitness() float64 {
	sum, n := 0.0, 0
	for i := range m.engines {
		for _, ind := range m.demePop(i).Members {
			if ind.Evaluated {
				sum += ind.Fitness
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// finish fills the island-specific tail of a Result (the common
// accounting in RunStats is filled by engine.Loop).
func (m *Model) finish(res *Result) {
	res.PerDemeBest = make([]float64, len(m.engines))
	for i := range m.engines {
		res.PerDemeBest[i] = m.demePop(i).BestFitness(m.dir)
	}
	if m.sup != nil {
		res.Restarts = m.sup.Restarts()
		res.PanicsRecovered = m.sup.PanicsRecovered()
		res.HeartbeatTimeouts = m.sup.HeartbeatTimeouts()
		res.DeadLettered = m.sup.DeadLettered()
		res.DeadDemes = m.sup.Router().Dead()
		res.Failures = m.sup.Failures()
	}
}

// RunParallel executes the island model with one goroutine per deme for at
// most maxGens island generations, stopping early when the problem's known
// optimum is found. Policy.Sync selects barriered generations (globally
// deterministic); otherwise demes free-run and exchange migrants through
// bounded non-blocking channels (migrant arrival order is scheduling
// dependent — the only permitted nondeterminism in the library).
func (m *Model) RunParallel(maxGens int, trace bool) *Result {
	if m.cfg.Resilience != nil {
		sup := supervise.New(*m.cfg.Resilience, m.cfg.Faults, m.cfg.Topology,
			m.cfg.NewEngine, m.restartRNG)
		for i := range m.engines {
			sup.Attach(i, m.engineRNGs[i])
		}
		m.sup = sup
		m.deadPops = make([]*core.Population, len(m.engines))
		if m.cfg.Policy.Sync {
			return m.runParallelSyncSupervised(maxGens, trace, sup)
		}
		return m.runParallelAsyncSupervised(maxGens, sup)
	}
	if m.cfg.Policy.Sync {
		return m.runParallelSync(maxGens, trace)
	}
	return m.runParallelAsync(maxGens)
}

// syncStepper advances every deme behind a per-generation barrier.
type syncStepper struct{ modelStepper }

// Step implements engine.Stepper.
func (s *syncStepper) Step(gen int) engine.StepInfo {
	var wg sync.WaitGroup
	for _, e := range s.m.engines {
		wg.Add(1)
		go func(e ga.Engine) {
			defer wg.Done()
			e.Step()
		}(e)
	}
	wg.Wait()
	return engine.StepInfo{Migrations: s.migrateDue(gen)}
}

// runParallelSync: barrier per generation, central migration.
func (m *Model) runParallelSync(maxGens int, trace bool) *Result {
	res := &Result{}
	ta, _ := m.problem.(core.TargetAware)
	totals := engine.Loop(&syncStepper{modelStepper{m: m}}, engine.Options{
		Stop:        core.MaxGenerations(maxGens),
		Target:      ta,
		HaltOnSolve: true,
		Trace:       trace,
	}, &res.RunStats)
	res.Migrations = totals.Migrations
	m.finish(res)
	return res
}

// demeHalt is the per-deme stop condition of the asynchronous modes: a
// free-running deme leaves its loop when any deme has solved or the
// generation cap is reached.
type demeHalt struct {
	solved *atomic.Bool
	max    int
}

// Done implements core.StopCondition.
func (h demeHalt) Done(s core.Status) bool { return s.Generation >= h.max || h.solved.Load() }

// Reason implements core.StopCondition.
func (h demeHalt) Reason() string { return "max generations" }

// asyncDeme is one free-running deme's engine.Stepper: evolve, check the
// deme's own population against the target, then (when the policy is due)
// emigrate over its transport endpoint and drain its inbox. The global
// best is computed after the demes join, so its loop runs with SkipBest.
type asyncDeme struct {
	m         *Model
	i         int
	e         ga.Engine
	mr        *rng.Source
	nbrs      []int
	ep        transport.Endpoint
	solved    *atomic.Bool
	solvedGen *atomic.Int64
	gens      []int
	ta        core.TargetAware
}

// Step implements engine.Stepper.
func (d *asyncDeme) Step(g int) engine.StepInfo {
	var info engine.StepInfo
	d.e.Step()
	d.gens[d.i] = g
	if d.ta != nil {
		if f := d.e.Population().BestFitness(d.m.dir); d.ta.Solved(f) {
			if d.solved.CompareAndSwap(false, true) {
				d.solvedGen.Store(int64(g))
			}
			info.Halt = true
			return info
		}
	}
	p := d.m.cfg.Policy
	if p.Due(g) {
		// Emigrate: best-effort offer of a fresh clone batch per link.
		// A refused batch (receiver's buffer full) is dropped — never
		// block evolution (bounded-staleness async model).
		if len(d.nbrs) > 0 {
			out := p.Select.Pick(d.e.Population(), d.m.dir, p.Count, d.mr)
			for _, nbr := range d.nbrs {
				if d.ep.Send(nbr, migration.CloneBatch(out)) {
					info.Migrations++
				}
			}
		}
		// Immigrate: drain whatever has arrived.
		for {
			batch, ok := d.ep.Recv()
			if !ok {
				break
			}
			p.Replace.Integrate(d.e.Population(), d.m.dir, batch, d.mr)
		}
	}
	return info
}

// Best implements engine.Stepper (unused: the deme loops run SkipBest).
func (d *asyncDeme) Best() (*core.Individual, float64) { return nil, d.m.dir.Worst() }

// Evaluations implements engine.Stepper.
func (d *asyncDeme) Evaluations() int64 { return d.e.Evaluations() }

// Direction implements engine.Stepper.
func (d *asyncDeme) Direction() core.Direction { return d.m.dir }

// runParallelAsync: free-running demes exchanging migrants over
// in-process loopback transport endpoints, one engine.Loop per deme
// goroutine. The endpoints are the same seam wire-mode islands run
// over (internal/transport), with Loopback as the medium.
func (m *Model) runParallelAsync(maxGens int) *Result {
	start := time.Now()
	res := &Result{}
	ta, _ := m.problem.(core.TargetAware)
	p := m.cfg.Policy
	n := len(m.engines)

	eps := transport.NewLoopback(n, p.Buffer)
	var solved atomic.Bool
	var solvedGen atomic.Int64
	gens := make([]int, n)
	totals := make([]engine.Totals, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := &asyncDeme{
				m: m, i: i, e: m.engines[i], mr: m.migRNGs[i],
				nbrs: m.cfg.Topology.Neighbors(i), ep: eps[i],
				solved: &solved, solvedGen: &solvedGen, gens: gens, ta: ta,
			}
			var stats core.RunStats
			totals[i] = engine.Loop(d, engine.Options{
				Stop:     demeHalt{solved: &solved, max: maxGens},
				SkipBest: true,
			}, &stats)
		}(i)
	}
	wg.Wait()

	for _, ep := range eps {
		res.Net.Add(ep.Stats())
	}
	m.finishAsync(res, totals, gens, &solved, &solvedGen)
	res.Elapsed = time.Since(start)
	return res
}

// finishAsync fills a Result after the deme goroutines of an asynchronous
// run have joined: global best, migration totals, solve point and the
// maximum per-deme generation.
func (m *Model) finishAsync(res *Result, totals []engine.Totals, gens []int, solved *atomic.Bool, solvedGen *atomic.Int64) {
	res.Best, res.BestFitness = m.globalBest()
	for _, t := range totals {
		res.Migrations += t.Migrations
	}
	res.StopReason = "max generations"
	if solved.Load() {
		res.Solved = true
		// In async mode evaluation counters cannot be snapshotted at the
		// instant of solving without racing other demes; the post-stop
		// total is a slight overcount and is documented as such.
		res.SolvedAtEval = m.totalEvaluations()
		res.SolvedAtGen = int(solvedGen.Load())
		res.StopReason = "target reached"
	}
	for _, g := range gens {
		if g > res.Generations {
			res.Generations = g
		}
	}
	res.Evaluations = m.totalEvaluations()
	m.finish(res)
}
