package island

import (
	"sync"
	"testing"

	"pga/internal/migration"
	"pga/internal/topology"
	"pga/internal/transport"
)

// TestRunWireOverLoopback drives the wire-mode runner in-process: one
// RunWire goroutine per island over shared Loopback endpoints — the
// same code path cmd/pgaisland runs over TCP, minus the sockets.
func TestRunWireOverLoopback(t *testing.T) {
	const n = 4
	eps := transport.NewLoopback(n, 16)
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			er, mr := WireStreams(11, n, i)
			results[i] = RunWire(WireConfig{
				Self:     i,
				Topology: topology.Ring(n),
				Endpoint: eps[i],
				Policy:   migration.Policy{Interval: 5, Count: 2},
				Engine:   onemaxEngines(64, 30)(i, er),
				MigRNG:   mr,
				MaxGens:  400,
			})
		}(i)
	}
	wg.Wait()

	var migrations int64
	for i, res := range results {
		if !res.Solved {
			t.Errorf("island %d failed onemax: best=%g after %d gens", i, res.BestFitness, res.Generations)
		}
		if len(res.PerDemeBest) != 1 {
			t.Errorf("island %d PerDemeBest = %v, want its own single entry", i, res.PerDemeBest)
		}
		migrations += res.Migrations
		if res.Net.Sent == 0 {
			t.Errorf("island %d never offered a batch to the wire", i)
		}
	}
	if migrations == 0 {
		t.Fatal("no migration was delivered across the ring")
	}
}

// TestRunWireSoloWhenAllPeersLost: an island whose every peer is dead
// keeps evolving alone — graceful degradation, not deadlock.
func TestRunWireSoloWhenAllPeersLost(t *testing.T) {
	const n = 3
	eps := transport.NewLoopback(n, 4)
	// Faulty scripts both peers crashed from tick 0, forever.
	spec := transport.FaultSpec{Crashes: []transport.Crash{
		{Peer: 1, At: 0, Until: 0},
		{Peer: 2, At: 0, Until: 0},
	}}
	er, mr := WireStreams(3, n, 0)
	res := RunWire(WireConfig{
		Self:     0,
		Topology: topology.Complete(n),
		Endpoint: transport.NewFaulty(eps[0], spec, 5),
		Policy:   migration.Policy{Interval: 3, Count: 1},
		Engine:   onemaxEngines(48, 25)(0, er),
		MigRNG:   mr,
		MaxGens:  600,
	})
	if !res.Solved {
		t.Fatalf("solo island failed onemax: best=%g", res.BestFitness)
	}
	if res.Net.Dropped == 0 || res.DeadLettered == 0 {
		t.Fatalf("crashed-peer traffic not dead-lettered: %+v", res.Net)
	}
}

// TestWireStreamsMatchInProcessSplit pins the cross-process determinism
// contract: WireStreams must hand island i exactly the engine and
// migration streams the in-process model's seed split would, and the
// pairs must be distinct across islands.
func TestWireStreamsMatchInProcessSplit(t *testing.T) {
	const n, seed = 4, 42
	for i := 0; i < n; i++ {
		e1, m1 := WireStreams(seed, n, i)
		e2, m2 := WireStreams(seed, n, i)
		for k := 0; k < 8; k++ {
			if e1.Uint64() != e2.Uint64() || m1.Uint64() != m2.Uint64() {
				t.Fatalf("island %d: WireStreams is not a pure function of (seed, n, self)", i)
			}
		}
	}
	// Distinctness across islands (first draw collision would mean a
	// shared stream — the bug the stream-per-goroutine rule exists for).
	seen := map[uint64]int{}
	for i := 0; i < n; i++ {
		e, m := WireStreams(seed, n, i)
		for name, v := range map[string]uint64{"engine": e.Uint64(), "migration": m.Uint64()} {
			if j, dup := seen[v]; dup {
				t.Fatalf("island %d %s stream collides with stream %d", i, name, j)
			}
			seen[v] = i
		}
	}
}
