package island

// Allocation-budget perf gate for the island model's sequential
// generation loop. Unlike the flat engines this path has a small fixed
// per-migration-epoch budget: migrant clones genuinely enter the
// receiving populations and the emigrant picks are policy-owned slices,
// so they are not pooled. The gate pins that budget so it cannot creep
// back toward the historical one-allocation-per-birth regime.

import (
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

func gateModel() *Model {
	return New(Config{
		Topology: topology.Ring(8),
		Policy:   migration.Policy{Interval: 10, Count: 2},
		NewEngine: func(deme int, r *rng.Source) ga.Engine {
			return ga.NewGenerational(ga.Config{
				Problem:   problems.OneMax{N: 128},
				PopSize:   25,
				Crossover: operators.Uniform{},
				Mutator:   operators.BitFlip{},
				RNG:       r,
			})
		},
		Seed: 1,
	})
}

// TestAllocBudget gates a 10-generation sequential run segment (which
// includes exactly one migration epoch at interval 10): the per-run
// fixed state (Result, stop condition, tracker, PerDemeBest) plus one
// epoch of migrant clones over 8 ring links must stay within a small
// fixed budget — far below one allocation per birth (8 demes × 25
// births × 10 generations = 2000 births per run).
func TestAllocBudget(t *testing.T) {
	m := gateModel()
	for _, e := range m.Engines() {
		e.Step() // build each deme's pooled buffers outside the measured region
	}
	avg := testing.AllocsPerRun(10, func() {
		m.RunSequential(core.MaxGenerations(10), false)
	})
	// Measured 125: ~25 fixed run-level allocations plus ~12 per delivered
	// batch over 8 ring links — each emigrant pick and each migrant clone
	// is 3 allocations (individual + genome + gene slice). 150 leaves
	// headroom without tolerating per-birth leaks (2000 births per run).
	if avg > 150 {
		t.Errorf("RunSequential(10 gens): %.1f allocs, budget 150", avg)
	}
}

// BenchmarkGenerationAllocs reports ns/op, B/op and allocs/op for one
// sequential island generation (8 demes × 25, ring).
func BenchmarkGenerationAllocs(b *testing.B) {
	b.Run("island/sequential", func(b *testing.B) {
		m := gateModel()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.RunSequential(core.MaxGenerations(1), false)
		}
	})
}
