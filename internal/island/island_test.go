package island

import (
	"testing"

	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

// onemaxEngines returns an engine factory for OneMax(bits) with the given
// per-deme population.
func onemaxEngines(bits, popSize int) func(int, *rng.Source) ga.Engine {
	return func(deme int, r *rng.Source) ga.Engine {
		return ga.NewGenerational(ga.Config{
			Problem:   problems.OneMax{N: bits},
			PopSize:   popSize,
			Selector:  operators.Tournament{K: 2},
			Crossover: operators.Uniform{},
			Mutator:   operators.BitFlip{},
			RNG:       r,
		})
	}
}

func TestSequentialSolvesOneMax(t *testing.T) {
	m := New(Config{
		Topology:  topology.Ring(4),
		Policy:    migration.Policy{Interval: 5, Count: 2},
		NewEngine: onemaxEngines(64, 30),
		Seed:      1,
	})
	res := m.RunSequential(core.AnyOf{
		core.MaxGenerations(300),
		core.TargetFitness{Target: 64, Dir: core.Maximize},
	}, false)
	if !res.Solved {
		t.Fatalf("island model failed onemax: best=%v", res.BestFitness)
	}
	if res.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	if len(res.PerDemeBest) != 4 {
		t.Fatal("per-deme stats missing")
	}
}

func TestSequentialDeterministic(t *testing.T) {
	run := func() (float64, int64, int) {
		m := New(Config{
			Topology:  topology.BiRing(3),
			Policy:    migration.Policy{Interval: 4, Count: 1},
			NewEngine: onemaxEngines(48, 20),
			Seed:      7,
		})
		res := m.RunSequential(core.MaxGenerations(40), true)
		return res.BestFitness, res.Evaluations, len(res.Trace)
	}
	f1, e1, t1 := run()
	f2, e2, t2 := run()
	if f1 != f2 || e1 != e2 || t1 != t2 {
		t.Fatalf("sequential island run not deterministic: (%v,%v,%v) vs (%v,%v,%v)", f1, e1, t1, f2, e2, t2)
	}
}

func TestMigrationImprovesOverIsolated(t *testing.T) {
	// Cantú-Paz: isolated demes are impractical — with the same effort,
	// connected demes reach better fitness on a deceptive problem.
	// Compare best fitness after a fixed budget, averaged over seeds.
	avg := func(top func(int) topology.Topology, interval int) float64 {
		sum := 0.0
		const runs = 5
		for s := uint64(0); s < runs; s++ {
			m := New(Config{
				Topology: top(6),
				Policy:   migration.Policy{Interval: interval, Count: 2},
				NewEngine: func(d int, r *rng.Source) ga.Engine {
					return ga.NewGenerational(ga.Config{
						Problem:   problems.DeceptiveTrap{Blocks: 10, K: 4},
						PopSize:   26,
						Crossover: operators.TwoPoint{},
						Mutator:   operators.BitFlip{},
						RNG:       r,
					})
				},
				Seed: s,
			})
			res := m.RunSequential(core.MaxGenerations(60), false)
			sum += res.BestFitness
		}
		return sum / runs
	}
	connected := avg(func(n int) topology.Topology { return topology.BiRing(n) }, 5)
	isolated := avg(topology.Isolated, 0)
	if connected < isolated {
		t.Fatalf("migration hurt: connected=%v isolated=%v", connected, isolated)
	}
}

func TestParallelSyncSolves(t *testing.T) {
	m := New(Config{
		Topology:  topology.Ring(4),
		Policy:    migration.Policy{Interval: 5, Count: 2, Sync: true},
		NewEngine: onemaxEngines(48, 25),
		Seed:      3,
	})
	res := m.RunParallel(300, false)
	if !res.Solved {
		t.Fatalf("sync-parallel failed: best=%v", res.BestFitness)
	}
	if res.SolvedAtGen <= 0 || res.SolvedAtGen > res.Generations {
		t.Fatalf("SolvedAtGen=%d Generations=%d", res.SolvedAtGen, res.Generations)
	}
}

func TestParallelAsyncSolves(t *testing.T) {
	m := New(Config{
		Topology:  topology.Ring(4),
		Policy:    migration.Policy{Interval: 5, Count: 2, Sync: false, Buffer: 2},
		NewEngine: onemaxEngines(48, 25),
		Seed:      4,
	})
	res := m.RunParallel(300, false)
	if !res.Solved {
		t.Fatalf("async-parallel failed: best=%v", res.BestFitness)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestParallelSyncDeterministic(t *testing.T) {
	run := func() float64 {
		m := New(Config{
			Topology:  topology.BiRing(4),
			Policy:    migration.Policy{Interval: 3, Count: 1, Sync: true},
			NewEngine: onemaxEngines(40, 20),
			Seed:      11,
		})
		return m.RunParallel(30, false).BestFitness
	}
	if run() != run() {
		t.Fatal("sync-parallel not deterministic")
	}
}

func TestSequentialMatchesSyncParallel(t *testing.T) {
	// With the same seed, lockstep-sequential and barrier-parallel modes
	// perform identical computations.
	// OneMax(256) cannot be solved in 25 generations, so neither mode
	// stops early and the computations must match exactly.
	mkModel := func() *Model {
		return New(Config{
			Topology:  topology.Ring(3),
			Policy:    migration.Policy{Interval: 4, Count: 1, Sync: true},
			NewEngine: onemaxEngines(256, 16),
			Seed:      13,
		})
	}
	seqRes := mkModel().RunSequential(core.MaxGenerations(25), false)
	parRes := mkModel().RunParallel(25, false)
	if seqRes.BestFitness != parRes.BestFitness || seqRes.Evaluations != parRes.Evaluations {
		t.Fatalf("sequential (%v, %d evals) != sync parallel (%v, %d evals)",
			seqRes.BestFitness, seqRes.Evaluations, parRes.BestFitness, parRes.Evaluations)
	}
}

func TestIsolatedTopologyNeverMigrates(t *testing.T) {
	m := New(Config{
		Topology:  topology.Isolated(3),
		Policy:    migration.Policy{Interval: 2, Count: 1},
		NewEngine: onemaxEngines(24, 10),
		Seed:      5,
	})
	res := m.RunSequential(core.MaxGenerations(10), false)
	if res.Migrations != 0 {
		t.Fatalf("isolated topology migrated %d times", res.Migrations)
	}
}

func TestZeroIntervalNeverMigrates(t *testing.T) {
	m := New(Config{
		Topology:  topology.Complete(3),
		Policy:    migration.Policy{Interval: 0},
		NewEngine: onemaxEngines(24, 10),
		Seed:      6,
	})
	res := m.RunSequential(core.MaxGenerations(10), false)
	if res.Migrations != 0 {
		t.Fatalf("interval 0 migrated %d times", res.Migrations)
	}
}

func TestMigrationCountMatchesSchedule(t *testing.T) {
	// Ring(4): 4 links; interval 5 over 20 generations → 4 epochs × 4 links.
	m := New(Config{
		Topology:  topology.Ring(4),
		Policy:    migration.Policy{Interval: 5, Count: 1},
		NewEngine: onemaxEngines(24, 10),
		Seed:      8,
	})
	res := m.RunSequential(core.MaxGenerations(20), false)
	if res.Migrations != 16 {
		t.Fatalf("migrations = %d, want 16", res.Migrations)
	}
}

func TestTracePunctuatedShape(t *testing.T) {
	m := New(Config{
		Topology:  topology.Ring(4),
		Policy:    migration.Policy{Interval: 10, Count: 2},
		NewEngine: onemaxEngines(64, 20),
		Seed:      9,
	})
	res := m.RunSequential(core.MaxGenerations(50), true)
	if len(res.Trace) != 51 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Best < res.Trace[i-1].Best {
			t.Fatal("global best regressed (elitist demes)")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Policy: migration.Policy{}, NewEngine: onemaxEngines(8, 4)}, // no topology
		{Topology: topology.Ring(2)},                                 // no engine factory
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestRunSequentialPanicsWithoutStop(t *testing.T) {
	m := New(Config{Topology: topology.Ring(2), NewEngine: onemaxEngines(8, 4), Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.RunSequential(nil, false)
}

func TestMixedEnginesPerDeme(t *testing.T) {
	// Alba & Troya 2002 mixed evolution schemes across islands; the model
	// must support heterogeneous demes.
	m := New(Config{
		Topology: topology.Ring(4),
		Policy:   migration.Policy{Interval: 5, Count: 1},
		NewEngine: func(deme int, r *rng.Source) ga.Engine {
			cfg := ga.Config{
				Problem:   problems.OneMax{N: 32},
				PopSize:   16,
				Crossover: operators.Uniform{},
				Mutator:   operators.BitFlip{},
				RNG:       r,
			}
			if deme%2 == 0 {
				return ga.NewGenerational(cfg)
			}
			return ga.NewSteadyState(cfg, true)
		},
		Seed: 10,
	})
	res := m.RunSequential(core.AnyOf{
		core.MaxGenerations(200),
		core.TargetFitness{Target: 32, Dir: core.Maximize},
	}, false)
	if !res.Solved {
		t.Fatalf("mixed-engine island failed: %v", res.BestFitness)
	}
}

func TestDemesAccessor(t *testing.T) {
	m := New(Config{Topology: topology.Ring(5), NewEngine: onemaxEngines(8, 4), Seed: 1})
	if m.Demes() != 5 || len(m.Engines()) != 5 {
		t.Fatal("deme accessors wrong")
	}
}

func TestDynamicTopologyRewires(t *testing.T) {
	dyn := topology.NewDynamic(func(seed uint64) topology.Topology {
		return topology.RandomRegular(6, 2, seed)
	}, 1)
	before := make([][]int, 6)
	for i := range before {
		before[i] = append([]int(nil), dyn.Neighbors(i)...)
	}
	m := New(Config{
		Topology:    dyn,
		Policy:      migration.Policy{Interval: 2, Count: 1},
		NewEngine:   onemaxEngines(256, 10),
		RewireEvery: 1,
		Seed:        14,
	})
	m.RunSequential(core.MaxGenerations(10), false)
	changed := false
	for i := range before {
		after := dyn.Neighbors(i)
		for j := range before[i] {
			if j < len(after) && before[i][j] != after[j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("dynamic topology never rewired during the run")
	}
}

func TestStaticTopologyUnaffectedByRewireEvery(t *testing.T) {
	m := New(Config{
		Topology:    topology.Ring(3),
		Policy:      migration.Policy{Interval: 2, Count: 1},
		NewEngine:   onemaxEngines(32, 8),
		RewireEvery: 1,
		Seed:        15,
	})
	res := m.RunSequential(core.MaxGenerations(8), false)
	if res.Evaluations == 0 {
		t.Fatal("run failed with RewireEvery on a static topology")
	}
}
