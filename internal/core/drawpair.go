package core

// DrawPair declares one RNG-draw equivalence pair: two functions the
// engines substitute for each other and that therefore must consume
// identical draw sequences. The static proof is pgalint's drawparity
// rule (shape equality over the symbolic draw summaries); the dynamic
// proof is a pinned golden trace in internal/equiv exercising Op, or the
// dedicated test named by Test. `pgalint -tracecover` audits that every
// declared pair has one of the two dynamic backings.
//
// Each package owning pair members exposes its own DrawPairs()
// (operators, island, and this package); cmd/pgalint takes the union and
// a sync test there keeps it identical to the analysis-side
// DefaultDrawParityConfig, so the linter never has to import product
// packages.
type DrawPair struct {
	// A and B are the qualified function names as the call graph renders
	// them ("pga/internal/operators.KPoint.Cross").
	A, B string
	// Op is the operator type name golden scenarios list ("KPoint"),
	// empty for non-operator pairs.
	Op string
	// Test names a dedicated equivalence test pinning the pair, when one
	// exists.
	Test string
	// Why documents the substitution site.
	Why string
}

// DrawPairs returns this package's equivalence pairs.
func DrawPairs() []DrawPair {
	return []DrawPair{
		{
			A:    "pga/internal/core.SerialEvaluator.EvaluateAll",
			B:    "pga/internal/core.SerialEvaluator.evaluateBatch",
			Test: "TestSerialEvaluatorBatchMatchesScalar",
			Why:  "SerialEvaluator dispatches to the batched path whenever the problem implements BatchProblem; both paths are draw-free and must stay so",
		},
	}
}
