package core

import (
	"fmt"
	"math"
	"testing"

	"pga/internal/rng"
)

// testGenome is a one-gene integer genome for exercising core types.
type testGenome struct{ v int }

func (g *testGenome) Clone() Genome  { c := *g; return &c }
func (g *testGenome) Len() int       { return 1 }
func (g *testGenome) String() string { return fmt.Sprintf("tg(%d)", g.v) }

// testProblem maximises the gene value; optimum is 100.
type testProblem struct{}

func (testProblem) Name() string         { return "test" }
func (testProblem) Direction() Direction { return Maximize }
func (testProblem) NewGenome(r *rng.Source) Genome {
	return &testGenome{v: r.Intn(101)}
}
func (testProblem) Evaluate(g Genome) float64 { return float64(g.(*testGenome).v) }
func (testProblem) Optimum() float64          { return 100 }
func (testProblem) Solved(f float64) bool     { return f >= 100 }

func TestDirectionBetter(t *testing.T) {
	if !Maximize.Better(2, 1) || Maximize.Better(1, 2) || Maximize.Better(1, 1) {
		t.Fatal("Maximize.Better wrong")
	}
	if !Minimize.Better(1, 2) || Minimize.Better(2, 1) || Minimize.Better(1, 1) {
		t.Fatal("Minimize.Better wrong")
	}
	if !Maximize.BetterOrEqual(1, 1) || !Minimize.BetterOrEqual(1, 1) {
		t.Fatal("BetterOrEqual should accept ties")
	}
}

func TestDirectionWorst(t *testing.T) {
	if !math.IsInf(Maximize.Worst(), -1) {
		t.Fatal("Maximize.Worst should be -Inf")
	}
	if !math.IsInf(Minimize.Worst(), 1) {
		t.Fatal("Minimize.Worst should be +Inf")
	}
}

func TestDirectionString(t *testing.T) {
	if Maximize.String() != "maximize" || Minimize.String() != "minimize" {
		t.Fatal("Direction.String wrong")
	}
}

func TestIndividualClone(t *testing.T) {
	ind := NewIndividual(&testGenome{v: 5})
	ind.Fitness = 5
	ind.Evaluated = true
	c := ind.Clone()
	c.Genome.(*testGenome).v = 9
	if ind.Genome.(*testGenome).v != 5 {
		t.Fatal("Clone aliases genome")
	}
	if !c.Evaluated || c.Fitness != 5 {
		t.Fatal("Clone lost fitness state")
	}
}

func TestIndividualInvalidate(t *testing.T) {
	ind := NewIndividual(&testGenome{v: 1})
	ind.Evaluated = true
	ind.Invalidate()
	if ind.Evaluated {
		t.Fatal("Invalidate did not clear Evaluated")
	}
}

func TestIndividualString(t *testing.T) {
	ind := NewIndividual(&testGenome{v: 3})
	if s := ind.String(); s != "{tg(3) fit=?}" {
		t.Fatalf("unevaluated String = %q", s)
	}
	ind.Fitness, ind.Evaluated = 3, true
	if s := ind.String(); s != "{tg(3) fit=3}" {
		t.Fatalf("evaluated String = %q", s)
	}
}

func TestRandomPopulation(t *testing.T) {
	r := rng.New(1)
	pop := RandomPopulation(testProblem{}, 20, r)
	if pop.Len() != 20 {
		t.Fatalf("population size %d, want 20", pop.Len())
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("RandomPopulation left member unevaluated")
		}
		if ind.Fitness != float64(ind.Genome.(*testGenome).v) {
			t.Fatal("fitness mismatch")
		}
	}
}

func TestPopulationBestWorst(t *testing.T) {
	pop := NewPopulation(3)
	for _, v := range []int{5, 9, 2} {
		ind := NewIndividual(&testGenome{v: v})
		ind.Fitness, ind.Evaluated = float64(v), true
		pop.Members = append(pop.Members, ind)
	}
	if i := pop.Best(Maximize); i != 1 {
		t.Fatalf("Best(Maximize)=%d want 1", i)
	}
	if i := pop.Worst(Maximize); i != 2 {
		t.Fatalf("Worst(Maximize)=%d want 2", i)
	}
	if i := pop.Best(Minimize); i != 2 {
		t.Fatalf("Best(Minimize)=%d want 2", i)
	}
	if i := pop.Worst(Minimize); i != 1 {
		t.Fatalf("Worst(Minimize)=%d want 1", i)
	}
	if f := pop.BestFitness(Maximize); f != 9 {
		t.Fatalf("BestFitness=%v want 9", f)
	}
}

func TestPopulationBestEmptyAndUnevaluated(t *testing.T) {
	pop := NewPopulation(0)
	if pop.Best(Maximize) != -1 || pop.Worst(Maximize) != -1 {
		t.Fatal("empty population should report -1")
	}
	if !math.IsInf(pop.BestFitness(Maximize), -1) {
		t.Fatal("empty BestFitness should be Worst()")
	}
	pop.Members = append(pop.Members, NewIndividual(&testGenome{v: 1}))
	if pop.Best(Maximize) != -1 {
		t.Fatal("unevaluated members must be ignored")
	}
}

func TestPopulationMeanStd(t *testing.T) {
	pop := NewPopulation(4)
	for _, v := range []int{2, 4, 6, 8} {
		ind := NewIndividual(&testGenome{v: v})
		ind.Fitness, ind.Evaluated = float64(v), true
		pop.Members = append(pop.Members, ind)
	}
	if m := pop.MeanFitness(); m != 5 {
		t.Fatalf("mean=%v want 5", m)
	}
	want := math.Sqrt(5) // population std of {2,4,6,8}
	if s := pop.StdFitness(); math.Abs(s-want) > 1e-12 {
		t.Fatalf("std=%v want %v", s, want)
	}
}

func TestPopulationMeanEmpty(t *testing.T) {
	pop := NewPopulation(0)
	if pop.MeanFitness() != 0 || pop.StdFitness() != 0 {
		t.Fatal("empty population stats should be 0")
	}
}

func TestPopulationCloneDeep(t *testing.T) {
	r := rng.New(2)
	pop := RandomPopulation(testProblem{}, 5, r)
	c := pop.Clone()
	c.Members[0].Genome.(*testGenome).v = -1
	if pop.Members[0].Genome.(*testGenome).v == -1 {
		t.Fatal("Clone aliases members")
	}
}

func TestPopulationReplace(t *testing.T) {
	r := rng.New(3)
	pop := RandomPopulation(testProblem{}, 2, r)
	nw := NewIndividual(&testGenome{v: 42})
	old := pop.Replace(1, nw)
	if pop.Members[1] != nw || old == nw {
		t.Fatal("Replace did not swap")
	}
}

func TestSerialEvaluator(t *testing.T) {
	r := rng.New(4)
	pop := NewPopulation(3)
	for i := 0; i < 3; i++ {
		pop.Members = append(pop.Members, NewIndividual(testProblem{}.NewGenome(r)))
	}
	var ev SerialEvaluator
	ev.EvaluateAll(testProblem{}, pop)
	if ev.Evaluations() != 3 {
		t.Fatalf("evaluations=%d want 3", ev.Evaluations())
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			t.Fatal("member left unevaluated")
		}
	}
	// Re-running must not re-evaluate.
	ev.EvaluateAll(testProblem{}, pop)
	if ev.Evaluations() != 3 {
		t.Fatalf("re-evaluated already-evaluated members: %d", ev.Evaluations())
	}
}

func TestMaxGenerations(t *testing.T) {
	c := MaxGenerations(10)
	if c.Done(Status{Generation: 9}) {
		t.Fatal("fired early")
	}
	if !c.Done(Status{Generation: 10}) {
		t.Fatal("did not fire at limit")
	}
	if c.Reason() == "" {
		t.Fatal("empty reason")
	}
}

func TestMaxEvaluations(t *testing.T) {
	c := MaxEvaluations(100)
	if c.Done(Status{Evaluations: 99}) || !c.Done(Status{Evaluations: 100}) {
		t.Fatal("MaxEvaluations boundary wrong")
	}
}

func TestTargetFitness(t *testing.T) {
	c := TargetFitness{Target: 50, Dir: Maximize}
	if c.Done(Status{BestFitness: 49}) || !c.Done(Status{BestFitness: 50}) {
		t.Fatal("TargetFitness maximize boundary wrong")
	}
	cm := TargetFitness{Target: 0.1, Dir: Minimize}
	if cm.Done(Status{BestFitness: 0.2}) || !cm.Done(Status{BestFitness: 0.1}) {
		t.Fatal("TargetFitness minimize boundary wrong")
	}
}

func TestStagnation(t *testing.T) {
	c := NewStagnation(3)
	s := Status{Improved: false}
	if c.Done(s) || c.Done(s) {
		t.Fatal("fired before limit")
	}
	if !c.Done(s) {
		t.Fatal("did not fire at limit")
	}
	// Improvement resets the counter.
	c2 := NewStagnation(2)
	c2.Done(Status{Improved: false})
	c2.Done(Status{Improved: true})
	if c2.Done(Status{Improved: false}) {
		t.Fatal("counter was not reset by improvement")
	}
}

func TestAnyOf(t *testing.T) {
	a := AnyOf{MaxGenerations(5), MaxEvaluations(100)}
	if a.Done(Status{Generation: 4, Evaluations: 50}) {
		t.Fatal("fired early")
	}
	if !a.Done(Status{Generation: 5, Evaluations: 50}) {
		t.Fatal("first child ignored")
	}
	if !a.Done(Status{Generation: 0, Evaluations: 100}) {
		t.Fatal("second child ignored")
	}
	if got := a.FiredReason(Status{Generation: 5}); got != "max generations" {
		t.Fatalf("FiredReason=%q", got)
	}
	if (AnyOf{}).Reason() != "empty condition" {
		t.Fatal("empty AnyOf reason wrong")
	}
}

func TestAnyOfPollsStatefulChildren(t *testing.T) {
	st := NewStagnation(2)
	a := AnyOf{MaxGenerations(1000), st}
	s := Status{Improved: false}
	a.Done(s)
	if !a.Done(s) {
		t.Fatal("stagnation child not advanced through AnyOf")
	}
	if a.FiredReason(s) != "stagnation" {
		t.Fatalf("FiredReason=%q want stagnation", a.FiredReason(s))
	}
}

func TestResultString(t *testing.T) {
	res := &Result{Problem: "p", RunStats: RunStats{BestFitness: 1, Generations: 2, Evaluations: 3, StopReason: "x"}}
	if res.String() == "" {
		t.Fatal("empty Result.String")
	}
}
