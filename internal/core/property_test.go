package core

import (
	"testing"
	"testing/quick"

	"pga/internal/rng"
)

// TestBestWorstConsistencyProperty: for any random population, Best and
// Worst must point at members whose fitness bounds every other member's,
// under both directions.
func TestBestWorstConsistencyProperty(t *testing.T) {
	r := rng.New(77)
	check := func(seed uint16, size uint8) bool {
		n := int(size%30) + 1
		rr := rng.New(uint64(seed) + 1)
		pop := NewPopulation(n)
		for i := 0; i < n; i++ {
			ind := NewIndividual(&testGenome{v: rr.Intn(1000)})
			ind.Fitness = rr.Range(-100, 100)
			ind.Evaluated = true
			pop.Members = append(pop.Members, ind)
		}
		for _, d := range []Direction{Maximize, Minimize} {
			b, w := pop.Best(d), pop.Worst(d)
			if b < 0 || w < 0 {
				return false
			}
			for _, ind := range pop.Members {
				if d.Better(ind.Fitness, pop.Members[b].Fitness) {
					return false
				}
				if d.Better(pop.Members[w].Fitness, ind.Fitness) {
					return false
				}
			}
		}
		_ = r
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMeanBetweenMinMaxProperty: population mean fitness always lies
// between the extremes.
func TestMeanBetweenMinMaxProperty(t *testing.T) {
	check := func(seed uint16, size uint8) bool {
		n := int(size%25) + 2
		rr := rng.New(uint64(seed) + 3)
		pop := NewPopulation(n)
		for i := 0; i < n; i++ {
			ind := NewIndividual(&testGenome{v: i})
			ind.Fitness = rr.Range(-50, 50)
			ind.Evaluated = true
			pop.Members = append(pop.Members, ind)
		}
		mean := pop.MeanFitness()
		lo := pop.Members[pop.Best(Minimize)].Fitness
		hi := pop.Members[pop.Best(Maximize)].Fitness
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCloneIndependenceProperty: mutating a cloned population never
// affects the original.
func TestCloneIndependenceProperty(t *testing.T) {
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 5)
		pop := RandomPopulation(testProblem{}, int(seed%10)+2, rr)
		orig := make([]float64, pop.Len())
		for i, ind := range pop.Members {
			orig[i] = ind.Fitness
		}
		c := pop.Clone()
		for _, ind := range c.Members {
			ind.Fitness = -999
			ind.Genome.(*testGenome).v = -1
		}
		for i, ind := range pop.Members {
			if ind.Fitness != orig[i] || ind.Genome.(*testGenome).v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
