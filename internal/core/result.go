package core

import (
	"fmt"
	"time"
)

// TracePoint is one sample of a run's progress, recorded once per step.
type TracePoint struct {
	Generation  int
	Evaluations int64
	Best        float64
	Mean        float64
}

// Result summarises a completed evolutionary run.
type Result struct {
	// Problem is the name of the problem that was optimised.
	Problem string
	// Best is the best individual found.
	Best *Individual
	// BestFitness is Best's fitness (kept separate so Result survives
	// genome reuse).
	BestFitness float64
	// Generations is the number of completed steps.
	Generations int
	// Evaluations is the total number of fitness evaluations.
	Evaluations int64
	// Solved reports whether a known optimum was reached (false when the
	// problem is not TargetAware).
	Solved bool
	// SolvedAtEval is the evaluation count at which the optimum was first
	// reached (0 when !Solved).
	SolvedAtEval int64
	// StopReason describes which condition terminated the run.
	StopReason string
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Trace holds per-step progress samples when tracing was enabled.
	Trace []TracePoint
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("%s: best=%g gens=%d evals=%d solved=%v (%s, %v)",
		r.Problem, r.BestFitness, r.Generations, r.Evaluations, r.Solved, r.StopReason, r.Elapsed)
}
