package core

import (
	"fmt"
	"time"
)

// TracePoint is one sample of a run's progress, recorded once per step.
type TracePoint struct {
	Generation  int
	Evaluations int64
	Best        float64
	Mean        float64
}

// RunStats is the uniform accounting block shared by every runtime's
// result type: all eight PGA models (sequential, master–slave, island,
// cellular, hierarchical, p2p, SIM, and the supervised variants) embed it,
// so Generations/Evaluations/BestFitness/Elapsed mean the same thing
// everywhere — the common accounting that Harada & Alba's evaluation
// methodology requires for cross-model comparison. It is filled by
// engine.Loop, the shared run-loop driver. What one "evaluation" counts
// per model is documented in DESIGN §3.
type RunStats struct {
	// Best is the best individual found (a stable copy; nil when the model
	// tracks fitness only, e.g. free-running async demes).
	Best *Individual
	// BestFitness is the best fitness seen over the whole run (kept
	// separate from Best so RunStats survives genome reuse).
	BestFitness float64
	// Generations is the number of completed steps (the maximum over demes
	// in asynchronous parallel modes).
	Generations int
	// Evaluations is the total number of fitness evaluations.
	Evaluations int64
	// Solved reports whether a known optimum was reached (always false
	// when the problem is not TargetAware).
	Solved bool
	// SolvedAtEval is the evaluation count at which the optimum was first
	// reached (0 when !Solved).
	SolvedAtEval int64
	// SolvedAtGen is the generation at which the optimum was first
	// reached (0 when !Solved).
	SolvedAtGen int
	// StopReason describes which condition terminated the run.
	StopReason string
	// CacheHits and CacheMisses are the fitness memo-cache counters when
	// the problem is wrapped in a CachedProblem (both zero otherwise).
	// A hit is an Evaluate answered from the memo; Evaluations still
	// counts it, because the engine asked for an evaluation — the
	// cache's saving shows up in wall time, not in the effort metric.
	CacheHits   int64
	CacheMisses int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Trace holds per-step progress samples when tracing was enabled.
	Trace []TracePoint
}

// NetStats is the delivery accounting of a migration transport endpoint
// (internal/transport): how many migrant batches an island offered,
// actually put on the wire, received, and lost, plus the link-health
// transitions of its peers. Wire-mode island results embed it so
// distributed runs report communication loss the way they report
// evaluations — explicitly, never silently (the Harada/Alba/Luque
// requirement that distributed measurements account for their failures).
type NetStats struct {
	// Sent counts batches offered to the transport (accepted into the
	// send path, whether or not they later reached the peer).
	Sent int64
	// Delivered counts batches handed to a peer: written to the wire
	// (TCP) or placed in the peer's inbox (loopback).
	Delivered int64
	// Received counts inbound batches dequeued by the island.
	Received int64
	// Dropped counts batches lost on this endpoint: backpressure
	// (drop-oldest queues, full inboxes), dead or unreachable peers,
	// write failures, corrupt frames and injected faults.
	Dropped int64
	// Reconnects counts peer links re-established after a failure.
	Reconnects int64
	// PeerDowns counts transitions of a peer to "down" after repeated
	// connection failures.
	PeerDowns int64
}

// Add accumulates other into s (aggregating per-endpoint stats).
func (s *NetStats) Add(other NetStats) {
	s.Sent += other.Sent
	s.Delivered += other.Delivered
	s.Received += other.Received
	s.Dropped += other.Dropped
	s.Reconnects += other.Reconnects
	s.PeerDowns += other.PeerDowns
}

// Result summarises a completed evolutionary run of a single engine.
type Result struct {
	RunStats
	// Problem is the name of the problem that was optimised.
	Problem string
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("%s: best=%g gens=%d evals=%d solved=%v (%s, %v)",
		r.Problem, r.BestFitness, r.Generations, r.Evaluations, r.Solved, r.StopReason, r.Elapsed)
}
