package core

// Status is a snapshot of a running evolution, fed to stopping criteria
// after every step.
type Status struct {
	// Generation is the number of completed steps (generations for
	// generational engines, sweeps for cellular, births/popsize for
	// steady-state).
	Generation int
	// Evaluations is the cumulative number of fitness evaluations.
	Evaluations int64
	// BestFitness is the best fitness seen so far in the whole run.
	BestFitness float64
	// Improved reports whether BestFitness improved during the last step.
	Improved bool
}

// StopCondition decides when a run terminates.
type StopCondition interface {
	// Done reports whether the run should stop given the current status.
	Done(s Status) bool
	// Reason describes the condition for run reports.
	Reason() string
}

// MaxGenerations stops after N completed steps.
type MaxGenerations int

// Done implements StopCondition.
func (m MaxGenerations) Done(s Status) bool { return s.Generation >= int(m) }

// Reason implements StopCondition.
func (m MaxGenerations) Reason() string { return "max generations" }

// MaxEvaluations stops after N fitness evaluations.
type MaxEvaluations int64

// Done implements StopCondition.
func (m MaxEvaluations) Done(s Status) bool { return s.Evaluations >= int64(m) }

// Reason implements StopCondition.
func (m MaxEvaluations) Reason() string { return "max evaluations" }

// TargetFitness stops once the best fitness reaches the target under the
// given direction.
type TargetFitness struct {
	Target float64
	Dir    Direction
}

// Done implements StopCondition.
func (t TargetFitness) Done(s Status) bool { return t.Dir.BetterOrEqual(s.BestFitness, t.Target) }

// Reason implements StopCondition.
func (t TargetFitness) Reason() string { return "target fitness reached" }

// Stagnation stops after N consecutive steps with no improvement of the
// best fitness. The zero value is invalid; use NewStagnation.
type Stagnation struct {
	limit int
	count int
}

// NewStagnation returns a Stagnation condition triggering after limit
// non-improving steps.
func NewStagnation(limit int) *Stagnation { return &Stagnation{limit: limit} }

// Done implements StopCondition.
func (st *Stagnation) Done(s Status) bool {
	if s.Improved {
		st.count = 0
		return false
	}
	st.count++
	return st.count >= st.limit
}

// Reason implements StopCondition.
func (st *Stagnation) Reason() string { return "stagnation" }

// AnyOf stops when any of its child conditions fires.
type AnyOf []StopCondition

// Done implements StopCondition. All children are polled every step so that
// stateful conditions (Stagnation) keep their counters current.
func (a AnyOf) Done(s Status) bool {
	done := false
	for _, c := range a {
		if c.Done(s) {
			done = true
		}
	}
	return done
}

// Reason implements StopCondition.
func (a AnyOf) Reason() string {
	if len(a) == 0 {
		return "empty condition"
	}
	return "any of composite"
}

// FiredReason returns the Reason of the first child that is satisfied by s,
// for run reports. It does not advance stateful children.
func (a AnyOf) FiredReason(s Status) string {
	for _, c := range a {
		if st, ok := c.(*Stagnation); ok {
			if st.count >= st.limit {
				return st.Reason()
			}
			continue
		}
		if c.Done(s) {
			return c.Reason()
		}
	}
	return "unknown"
}
