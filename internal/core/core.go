// Package core defines the shared abstractions of the pga library: genomes,
// individuals, populations, problems, stopping criteria and run results.
//
// Every evolutionary engine in this repository — the sequential baselines in
// internal/ga, the island model in internal/island, the master–slave farm in
// internal/masterslave, the cellular GA in internal/cellular, the
// hierarchical GA in internal/hga and the specialized island model in
// internal/sim — is written against these types, which is what lets the
// experiment harness swap models freely (the central comparison of the
// surveyed literature).
package core

import (
	"fmt"
	"math"

	"pga/internal/rng"
)

// Genome is an encoded candidate solution. Implementations live in
// internal/genome (bit strings, real vectors, integer vectors,
// permutations). Genomes are mutable; operators that must not alias call
// Clone first.
type Genome interface {
	// Clone returns a deep copy of the genome.
	Clone() Genome
	// Len returns the number of genes.
	Len() int
	// String renders the genome for logs and debugging.
	String() string
}

// InPlace is an optional Genome extension for allocation-free copying.
// All representations in internal/genome implement it; the engines' pooled
// generation buffers depend on it to rewrite offspring without allocating.
type InPlace interface {
	Genome
	// CopyFrom overwrites the receiver's genes with src's. The receiver
	// and src must share concrete type and length (same problem).
	CopyFrom(src Genome)
}

// CopyGenome copies src into dst, reusing dst's storage when dst
// implements InPlace; otherwise (or when dst is nil) it returns a fresh
// clone. The returned genome never aliases src's gene storage.
func CopyGenome(dst, src Genome) Genome {
	if ip, ok := dst.(InPlace); ok {
		ip.CopyFrom(src)
		return dst
	}
	return src.Clone()
}

// Direction states whether larger or smaller fitness is better.
type Direction int

const (
	// Maximize means larger fitness values are better.
	Maximize Direction = iota
	// Minimize means smaller fitness values are better.
	Minimize
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Maximize {
		return "maximize"
	}
	return "minimize"
}

// Better reports whether fitness a is strictly better than b under d.
func (d Direction) Better(a, b float64) bool {
	if d == Maximize {
		return a > b
	}
	return a < b
}

// BetterOrEqual reports whether a is at least as good as b under d.
func (d Direction) BetterOrEqual(a, b float64) bool {
	if d == Maximize {
		return a >= b
	}
	return a <= b
}

// Worst returns the worst possible fitness under d (-Inf when maximizing,
// +Inf when minimizing); useful to initialise "best so far" trackers.
func (d Direction) Worst() float64 {
	if d == Maximize {
		return math.Inf(-1)
	}
	return math.Inf(1)
}

// Problem is an optimisation problem: it can create random genomes and
// evaluate their fitness. Implementations must be safe for concurrent
// Evaluate calls (the master–slave model evaluates in parallel); NewGenome
// receives the caller's RNG so it needs no internal state.
type Problem interface {
	// Name identifies the problem in tables and logs.
	Name() string
	// Direction states whether fitness is maximised or minimised.
	Direction() Direction
	// NewGenome returns a fresh random genome drawn with r.
	NewGenome(r *rng.Source) Genome
	// Evaluate returns the fitness of g. It must not modify g.
	Evaluate(g Genome) float64
}

// TargetAware is an optional Problem extension for problems with a known
// optimum, enabling efficacy (hit-rate) measurement.
type TargetAware interface {
	// Optimum returns the fitness value of the global optimum.
	Optimum() float64
	// Solved reports whether fitness f counts as having found the optimum
	// (problems with real-valued fitness use a tolerance).
	Solved(f float64) bool
}

// Individual pairs a genome with its (possibly not yet computed) fitness.
type Individual struct {
	Genome    Genome
	Fitness   float64
	Evaluated bool
}

// NewIndividual returns an unevaluated individual wrapping g.
func NewIndividual(g Genome) *Individual {
	return &Individual{Genome: g}
}

// Clone returns a deep copy of the individual, including fitness state.
func (ind *Individual) Clone() *Individual {
	return &Individual{Genome: ind.Genome.Clone(), Fitness: ind.Fitness, Evaluated: ind.Evaluated}
}

// CopyFrom overwrites ind with a deep copy of src, reusing the existing
// genome storage when possible — the allocation-free form of Clone for
// pooled generation buffers and best-so-far trackers.
func (ind *Individual) CopyFrom(src *Individual) {
	ind.Genome = CopyGenome(ind.Genome, src.Genome)
	ind.Fitness = src.Fitness
	ind.Evaluated = src.Evaluated
}

// Invalidate marks the fitness as stale (after a mutating operator).
func (ind *Individual) Invalidate() { ind.Evaluated = false }

// String implements fmt.Stringer.
func (ind *Individual) String() string {
	if !ind.Evaluated {
		return fmt.Sprintf("{%s fit=?}", ind.Genome)
	}
	return fmt.Sprintf("{%s fit=%g}", ind.Genome, ind.Fitness)
}

// Population is an ordered collection of individuals (a deme, in the
// island-model vocabulary of the survey).
type Population struct {
	Members []*Individual
}

// NewPopulation returns an empty population with capacity n.
func NewPopulation(n int) *Population {
	return &Population{Members: make([]*Individual, 0, n)}
}

// RandomPopulation creates and evaluates n random individuals of p using r.
func RandomPopulation(p Problem, n int, r *rng.Source) *Population {
	pop := NewPopulation(n)
	for i := 0; i < n; i++ {
		ind := NewIndividual(p.NewGenome(r))
		ind.Fitness = p.Evaluate(ind.Genome)
		ind.Evaluated = true
		pop.Members = append(pop.Members, ind)
	}
	return pop
}

// Len returns the number of individuals.
func (pop *Population) Len() int { return len(pop.Members) }

// Clone returns a deep copy of the population.
func (pop *Population) Clone() *Population {
	out := NewPopulation(pop.Len())
	for _, ind := range pop.Members {
		out.Members = append(out.Members, ind.Clone())
	}
	return out
}

// Best returns the index of the best evaluated individual under d, or -1
// if the population is empty.
func (pop *Population) Best(d Direction) int {
	best := -1
	bf := d.Worst()
	for i, ind := range pop.Members {
		if ind.Evaluated && (best == -1 || d.Better(ind.Fitness, bf)) {
			best, bf = i, ind.Fitness
		}
	}
	return best
}

// Worst returns the index of the worst evaluated individual under d, or -1
// if the population is empty.
func (pop *Population) Worst(d Direction) int {
	worst := -1
	var wf float64
	for i, ind := range pop.Members {
		if !ind.Evaluated {
			continue
		}
		if worst == -1 || d.Better(wf, ind.Fitness) {
			worst, wf = i, ind.Fitness
		}
	}
	return worst
}

// BestFitness returns the best fitness in the population under d, or
// d.Worst() if empty.
func (pop *Population) BestFitness(d Direction) float64 {
	i := pop.Best(d)
	if i < 0 {
		return d.Worst()
	}
	return pop.Members[i].Fitness
}

// MeanFitness returns the mean fitness over evaluated members (0 if none).
func (pop *Population) MeanFitness() float64 {
	sum, n := 0.0, 0
	for _, ind := range pop.Members {
		if ind.Evaluated {
			sum += ind.Fitness
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// StdFitness returns the population fitness standard deviation over
// evaluated members (0 if fewer than two).
func (pop *Population) StdFitness() float64 {
	mean := pop.MeanFitness()
	sum, n := 0.0, 0
	for _, ind := range pop.Members {
		if ind.Evaluated {
			d := ind.Fitness - mean
			sum += d * d
			n++
		}
	}
	if n < 2 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// Replace swaps in ind at index i, returning the previous occupant.
func (pop *Population) Replace(i int, ind *Individual) *Individual {
	old := pop.Members[i]
	pop.Members[i] = ind
	return old
}

// Evaluator abstracts how a population's pending fitness evaluations are
// performed. The sequential engines use SerialEvaluator; the master–slave
// model substitutes a parallel farm. Implementations must leave every
// member evaluated.
type Evaluator interface {
	// EvaluateAll computes fitness for every member with Evaluated == false.
	EvaluateAll(p Problem, pop *Population)
	// Evaluations returns the cumulative number of Evaluate calls made.
	Evaluations() int64
}

// BatchProblem is an optional Problem extension for fitness functions
// that can amortise per-call overhead across many genomes (the
// evaluation-effort lever of Harada, Alba & Luque's methodology):
// SerialEvaluator and the master–slave farm hand it whole pending sets
// at once. EvaluateBatch must agree bit-for-bit with Evaluate on every
// genome — batching is a throughput optimisation, never a semantic one.
type BatchProblem interface {
	Problem
	// EvaluateBatch writes Evaluate(genomes[i]) into out[i] for every i.
	// len(out) == len(genomes); genomes must not be modified.
	EvaluateBatch(genomes []Genome, out []float64)
}

// SerialEvaluator evaluates pending individuals in the caller's
// goroutine, one batch at a time when the problem supports it.
type SerialEvaluator struct {
	count int64

	// Reusable batch buffers (grown once per population shape, then
	// steady-state allocation-free — the alloc gates cover this path).
	idx     []int
	genomes []Genome
	out     []float64
}

// EvaluateAll implements Evaluator.
func (e *SerialEvaluator) EvaluateAll(p Problem, pop *Population) {
	if bp, ok := p.(BatchProblem); ok {
		e.evaluateBatch(bp, pop)
		return
	}
	for _, ind := range pop.Members {
		if !ind.Evaluated {
			ind.Fitness = p.Evaluate(ind.Genome)
			ind.Evaluated = true
			e.count++
		}
	}
}

// evaluateBatch gathers the pending members and evaluates them with one
// EvaluateBatch call.
func (e *SerialEvaluator) evaluateBatch(bp BatchProblem, pop *Population) {
	e.ensureBatchBuffers(pop.Len())
	pending := 0
	for i, ind := range pop.Members {
		if !ind.Evaluated {
			e.idx[pending] = i
			e.genomes[pending] = ind.Genome
			pending++
		}
	}
	if pending == 0 {
		return
	}
	bp.EvaluateBatch(e.genomes[:pending], e.out[:pending])
	for k := 0; k < pending; k++ {
		ind := pop.Members[e.idx[k]]
		ind.Fitness = e.out[k]
		ind.Evaluated = true
		e.genomes[k] = nil // do not pin genomes between calls
	}
	e.count += int64(pending)
}

// ensureBatchBuffers grows the reusable batch buffers to hold n entries
// (first call or population growth only).
func (e *SerialEvaluator) ensureBatchBuffers(n int) {
	if cap(e.idx) >= n {
		return
	}
	e.idx = make([]int, n)
	e.genomes = make([]Genome, n)
	e.out = make([]float64, n)
}

// Evaluations implements Evaluator.
func (e *SerialEvaluator) Evaluations() int64 { return e.count }
