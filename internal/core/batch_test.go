package core

import (
	"sync"
	"testing"

	"pga/internal/rng"
)

// hashGenome is a Hashable one-word genome for cache tests.
type hashGenome struct{ v uint64 }

func (g *hashGenome) Clone() Genome             { c := *g; return &c }
func (g *hashGenome) Len() int                  { return 1 }
func (g *hashGenome) String() string            { return "hg" }
func (g *hashGenome) Hash128() (uint64, uint64) { return g.v, ^g.v }

// countingProblem counts Evaluate calls (mutex-guarded: the purity
// exemption covers CachedProblem, not this fixture, so it lives in a
// test file where the lint does not look).
type countingProblem struct {
	mu    sync.Mutex
	calls int
}

func (*countingProblem) Name() string                   { return "counting" }
func (*countingProblem) Direction() Direction           { return Maximize }
func (*countingProblem) NewGenome(r *rng.Source) Genome { return &hashGenome{v: r.Uint64()} }
func (p *countingProblem) Evaluate(g Genome) float64 {
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
	return float64(g.(*hashGenome).v % 97)
}

// batchTestProblem implements BatchProblem over testGenome, recording
// how it was invoked.
type batchTestProblem struct {
	batchCalls int
	evalCalls  int
}

func (*batchTestProblem) Name() string                   { return "batchtest" }
func (*batchTestProblem) Direction() Direction           { return Maximize }
func (*batchTestProblem) NewGenome(r *rng.Source) Genome { return &testGenome{v: r.Intn(101)} }
func (p *batchTestProblem) Evaluate(g Genome) float64 {
	p.evalCalls++
	return float64(g.(*testGenome).v)
}
func (p *batchTestProblem) EvaluateBatch(genomes []Genome, out []float64) {
	p.batchCalls++
	for i, g := range genomes {
		out[i] = float64(g.(*testGenome).v)
	}
}

func TestSerialEvaluatorUsesBatch(t *testing.T) {
	p := &batchTestProblem{}
	pop := NewPopulation(10)
	for i := 0; i < 10; i++ {
		pop.Members = append(pop.Members, NewIndividual(&testGenome{v: i}))
	}
	// Pre-evaluate two members: only the pending eight may be batched.
	pop.Members[3].Fitness, pop.Members[3].Evaluated = 3, true
	pop.Members[7].Fitness, pop.Members[7].Evaluated = 7, true

	var e SerialEvaluator
	e.EvaluateAll(p, pop)

	if p.batchCalls != 1 || p.evalCalls != 0 {
		t.Fatalf("batch=%d eval=%d, want one batch call and no scalar calls", p.batchCalls, p.evalCalls)
	}
	if e.Evaluations() != 8 {
		t.Fatalf("Evaluations=%d, want 8 (pending only)", e.Evaluations())
	}
	for i, ind := range pop.Members {
		if !ind.Evaluated || ind.Fitness != float64(i) {
			t.Fatalf("member %d: fitness %v evaluated %v", i, ind.Fitness, ind.Evaluated)
		}
	}

	// All evaluated: no batch call at all.
	e.EvaluateAll(p, pop)
	if p.batchCalls != 1 {
		t.Fatal("batch call issued with nothing pending")
	}
}

func TestSerialEvaluatorBatchMatchesScalar(t *testing.T) {
	// The batched path must produce fitness values identical to the
	// scalar path for the same genomes.
	build := func() *Population {
		r := rng.New(5)
		pop := NewPopulation(20)
		for i := 0; i < 20; i++ {
			pop.Members = append(pop.Members, NewIndividual(&testGenome{v: r.Intn(101)}))
		}
		return pop
	}
	batched, scalar := build(), build()

	var e1 SerialEvaluator
	e1.EvaluateAll(&batchTestProblem{}, batched)
	var e2 SerialEvaluator
	e2.EvaluateAll(testProblem{}, scalar) // no BatchProblem: scalar path

	for i := range batched.Members {
		if batched.Members[i].Fitness != scalar.Members[i].Fitness {
			t.Fatalf("member %d: batched %v != scalar %v", i,
				batched.Members[i].Fitness, scalar.Members[i].Fitness)
		}
	}
	if e1.Evaluations() != e2.Evaluations() {
		t.Fatal("evaluation counts diverge between paths")
	}
}

func TestSerialEvaluatorBatchReleasesGenomes(t *testing.T) {
	// The gather buffer must not pin genome pointers between calls.
	p := &batchTestProblem{}
	pop := NewPopulation(4)
	for i := 0; i < 4; i++ {
		pop.Members = append(pop.Members, NewIndividual(&testGenome{v: i}))
	}
	var e SerialEvaluator
	e.EvaluateAll(p, pop)
	for k := range e.genomes[:4] {
		if e.genomes[k] != nil {
			t.Fatalf("gather slot %d still pins a genome", k)
		}
	}
}

func TestCachedProblemHitIsBitIdentical(t *testing.T) {
	inner := &countingProblem{}
	c := NewCachedProblem(inner, 0)
	g := &hashGenome{v: 12345}

	fresh := c.Evaluate(g) // miss: delegates
	hit := c.Evaluate(g)   // hit: memo
	if fresh != hit {
		t.Fatalf("cache hit %v differs from fresh evaluation %v", hit, fresh)
	}
	if inner.calls != 1 {
		t.Fatalf("inner evaluated %d times, want 1", inner.calls)
	}
	if h, m := c.CacheStats(); h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestCachedProblemBypassesUnhashable(t *testing.T) {
	c := NewCachedProblem(testProblem{}, 0)
	g := &testGenome{v: 42} // not Hashable
	if f := c.Evaluate(g); f != 42 {
		t.Fatalf("bypass evaluation = %v", f)
	}
	if h, m := c.CacheStats(); h != 0 || m != 0 {
		t.Fatal("unhashable genome touched the cache counters")
	}
	if c.Len() != 0 {
		t.Fatal("unhashable genome was memoised")
	}
}

func TestCachedProblemEpochEviction(t *testing.T) {
	inner := &countingProblem{}
	c := NewCachedProblem(inner, 4)
	for v := uint64(0); v < 4; v++ {
		c.Evaluate(&hashGenome{v: v})
	}
	if c.Len() != 4 {
		t.Fatalf("Len=%d before eviction, want 4", c.Len())
	}
	// The fifth distinct genome clears the epoch, then memoises itself.
	c.Evaluate(&hashGenome{v: 99})
	if c.Len() != 1 {
		t.Fatalf("Len=%d after eviction, want 1", c.Len())
	}
	// Evicted entries become misses again, with unchanged values.
	before := inner.calls
	if f := c.Evaluate(&hashGenome{v: 2}); f != 2%97 {
		t.Fatalf("re-evaluated fitness %v", f)
	}
	if inner.calls != before+1 {
		t.Fatal("evicted entry did not re-evaluate")
	}
}

func TestCachedProblemConcurrent(t *testing.T) {
	// The Problem contract requires concurrent Evaluate safety; hammer
	// the cache from several goroutines (run with -race in CI).
	c := NewCachedProblem(&countingProblem{}, 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < 200; i++ {
				g := &hashGenome{v: r.Uint64() % 100}
				want := float64(g.v % 97)
				if got := c.Evaluate(g); got != want {
					t.Errorf("concurrent evaluate %v, want %v", got, want)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	h, m := c.CacheStats()
	if h+m != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", h+m, 8*200)
	}
}

func TestCachedProblemTargetDelegation(t *testing.T) {
	// Wrapping a TargetAware problem delegates both methods.
	c := NewCachedProblem(testProblem{}, 0)
	if c.Optimum() != 100 || !c.Solved(100) || c.Solved(99) {
		t.Fatal("TargetAware delegation wrong")
	}
	// Wrapping a target-less problem: Solved is false, Optimum panics.
	c2 := NewCachedProblem(&batchTestProblem{}, 0)
	if c2.Solved(1e9) {
		t.Fatal("target-less problem reported solved")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Optimum did not panic for target-less problem")
		}
	}()
	c2.Optimum()
}
