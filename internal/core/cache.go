package core

import "sync"

// Hashable is an optional Genome extension for genomes whose content can
// be digested into a 128-bit key — the handle the fitness memo-cache
// needs. The packed BitString implements it over its words.
type Hashable interface {
	Genome
	// Hash128 returns a 128-bit content digest: equal genomes must hash
	// equal, and distinct genomes must collide only with cryptographic-
	// hash-style improbability (the cache trusts the digest fully).
	Hash128() (uint64, uint64)
}

// CacheReporter is implemented by problems that keep fitness memo-cache
// accounting; ga.Run copies the counters into RunStats after a run, so
// the stats ride the existing result plumbing without touching the
// Observer seam.
type CacheReporter interface {
	// CacheStats returns the cumulative cache hits and misses.
	CacheStats() (hits, misses int64)
}

// cacheKey is the 128-bit genome digest used as the memo-cache map key.
type cacheKey struct{ lo, hi uint64 }

// CachedProblem decorates a Problem with a bounded fitness memo-cache
// keyed by the genome's Hash128 digest. Steady-state and cellular
// engines re-evaluate revisited genotypes constantly (elites survive,
// mutation is rare per gene); for expensive fitness functions the cache
// converts those revisits into map hits. Genomes that do not implement
// Hashable bypass the cache.
//
// The cache is safe for concurrent Evaluate calls (the Problem contract)
// and per-deme by construction: wrap the problem once per deme to keep
// demes share-nothing. It is NOT allocation-free — map inserts allocate —
// so it belongs on expensive evaluations, not inside the zero-alloc
// micro-benchmarks.
type CachedProblem struct {
	Problem

	capacity int
	mu       sync.Mutex
	memo     map[cacheKey]float64
	hits     int64
	misses   int64
}

// NewCachedProblem wraps p with a memo-cache holding at most capacity
// entries (capacity <= 0 selects 1<<16). When full, the cache is cleared
// wholesale — an epoch eviction that keeps the steady state allocation-
// light and favours the current population over stale genotypes.
func NewCachedProblem(p Problem, capacity int) *CachedProblem {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &CachedProblem{
		Problem:  p,
		capacity: capacity,
		memo:     make(map[cacheKey]float64),
	}
}

// Evaluate implements Problem: a cache hit returns the memoised fitness
// (bit-identical to a fresh Evaluate — values enter the map only from
// the wrapped problem); a miss evaluates and memoises.
func (c *CachedProblem) Evaluate(g Genome) float64 {
	h, ok := g.(Hashable)
	if !ok {
		return c.Problem.Evaluate(g)
	}
	lo, hi := h.Hash128()
	key := cacheKey{lo, hi}
	c.mu.Lock()
	if f, ok := c.memo[key]; ok {
		c.hits++
		c.mu.Unlock()
		return f
	}
	c.mu.Unlock()
	f := c.Problem.Evaluate(g)
	c.mu.Lock()
	c.misses++
	if len(c.memo) >= c.capacity {
		clear(c.memo)
	}
	c.memo[key] = f
	c.mu.Unlock()
	return f
}

// CacheStats implements CacheReporter.
func (c *CachedProblem) CacheStats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the current number of memoised entries (for tests and
// capacity tuning).
func (c *CachedProblem) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.memo)
}

// Optimum implements TargetAware by delegation; it panics when the
// wrapped problem has no known optimum (mirroring pga.Target's error).
func (c *CachedProblem) Optimum() float64 {
	if t, ok := c.Problem.(TargetAware); ok {
		return t.Optimum()
	}
	panic("core: CachedProblem wraps a problem with no known optimum")
}

// Solved implements TargetAware by delegation; problems without a known
// optimum never report solved.
func (c *CachedProblem) Solved(f float64) bool {
	if t, ok := c.Problem.(TargetAware); ok {
		return t.Solved(f)
	}
	return false
}
