// Package engine is the shared run-loop layer behind every PGA runtime.
//
// The survey's central observation is that the global, island, cellular,
// hierarchical and p2p models are one family differing only in structure
// and communication. This package is that observation as code: Loop owns
// everything the models used to duplicate — stop-condition polling,
// generation and evaluation accounting, monotone best tracking, solve
// detection, trace sampling, elapsed timing and the ordered Observer
// hooks — while each model contributes only a Stepper with its
// model-specific generation step and communication.
//
// Loop is behaviour-preserving with respect to the model-local loops it
// replaced: it draws no random numbers of its own, polls the stop
// condition exactly once per generation (stateful conditions like
// Stagnation count on), and performs no per-generation allocations (the
// zero-allocation gates of the runtimes cover it).
package engine

import (
	"time"

	"pga/internal/core"
)

// StepInfo is what a Stepper reports about one call to Step.
type StepInfo struct {
	// Migrations counts migrant batches delivered during the step; when
	// non-zero, Loop fires Observer.OnMigration.
	Migrations int64
	// Restarts counts supervised deme restarts performed during the step;
	// when non-zero, Loop fires Observer.OnRestart.
	Restarts int64
	// Halt ends the run after this step's accounting (a model-specific
	// stop: e.g. a free-running deme that solved its own population, or a
	// supervised deme whose restart budget ran out).
	Halt bool
	// Rewound reports that the step did NOT complete a generation: the
	// model rolled back to generation ResumeAt (a supervised
	// restart-from-checkpoint). Loop resets its generation counter,
	// skips the completed-generation accounting and observers, and
	// resumes stepping from ResumeAt+1.
	Rewound bool
	// ResumeAt is the generation to resume from when Rewound is set.
	ResumeAt int
}

// Stepper is the model-specific part of a runtime: one generation of
// evolution plus communication. Loop owns everything else.
type Stepper interface {
	// Step advances the model by one generation. gen is the 1-based
	// generation about to complete; migration policies are due against it.
	Step(gen int) StepInfo
	// Best returns the current best individual as a live reference into
	// the model (valid only until the next Step) and its fitness. A model
	// that tracks fitness only returns (nil, fitness); with no candidate
	// at all it returns (nil, Direction().Worst()).
	Best() (*core.Individual, float64)
	// Evaluations is the cumulative fitness-evaluation count.
	Evaluations() int64
	// Direction is the fitness direction.
	Direction() core.Direction
}

// MeanReporter is an optional Stepper extension: models that support
// tracing report the population mean fitness for trace points.
type MeanReporter interface {
	MeanFitness() float64
}

// Observer receives ordered run-lifecycle hooks from Loop. Per completed
// generation the order is: OnRestart (if the step restarted demes),
// OnMigration (if the step delivered migrants), then OnGeneration; OnDone
// fires once with the final stats. OnGeneration also fires once for the
// initial population as generation 0 — that is the hook supervised runs
// use for their generation-0 checkpoint.
type Observer interface {
	// OnGeneration fires after a generation's accounting (and once for
	// generation 0 before the first step).
	OnGeneration(s core.Status)
	// OnMigration fires after a step that delivered migrant batches.
	OnMigration(gen int, batches int64)
	// OnRestart fires after a step that restarted supervised demes.
	OnRestart(gen int, restarts int64)
	// OnDone fires once when the run ends, after the stats are final.
	OnDone(stats *core.RunStats)
}

// Funcs adapts optional functions to Observer; nil fields are no-ops.
type Funcs struct {
	Generation func(s core.Status)
	Migration  func(gen int, batches int64)
	Restart    func(gen int, restarts int64)
	Done       func(stats *core.RunStats)
}

// OnGeneration implements Observer.
func (f Funcs) OnGeneration(s core.Status) {
	if f.Generation != nil {
		f.Generation(s)
	}
}

// OnMigration implements Observer.
func (f Funcs) OnMigration(gen int, batches int64) {
	if f.Migration != nil {
		f.Migration(gen, batches)
	}
}

// OnRestart implements Observer.
func (f Funcs) OnRestart(gen int, restarts int64) {
	if f.Restart != nil {
		f.Restart(gen, restarts)
	}
}

// OnDone implements Observer.
func (f Funcs) OnDone(stats *core.RunStats) {
	if f.Done != nil {
		f.Done(stats)
	}
}

// Options tunes Loop. The flags encode the (small) historical differences
// between the model loops so that porting a model onto Loop is
// behaviour-preserving; see DESIGN §3.
type Options struct {
	// Stop terminates the run (required). It is polled exactly once
	// before every generation, so stateful conditions keep their
	// counters current.
	Stop core.StopCondition
	// Target, when non-nil, enables solve detection against the problem's
	// known optimum (Solved/SolvedAtEval/SolvedAtGen).
	Target core.TargetAware
	// HaltOnSolve ends the run as soon as Target reports solved instead
	// of waiting for Stop to fire.
	HaltOnSolve bool
	// InitialSolve also checks Target against the initial population
	// (generation 0), before any step.
	InitialSolve bool
	// Trace records a TracePoint per completed generation.
	Trace bool
	// InitialTracePoint also records generation 0 (requires Trace).
	InitialTracePoint bool
	// SkipBest disables best-individual and best-fitness tracking — for
	// per-deme loops whose global best is computed after the demes join.
	SkipBest bool
	// Observers receive the lifecycle hooks, in slice order.
	Observers []Observer
}

// Totals accumulates the StepInfo counters over a run; Loop returns it so
// models can fill their result extensions (e.g. island Migrations).
type Totals struct {
	Migrations int64
	Restarts   int64
}

// Loop drives s until the stop condition fires (or a halt: see
// Options.HaltOnSolve and StepInfo.Halt) and fills out with the run's
// accounting. The loop itself draws no random numbers and allocates only
// fixed run-level state (the pooled best tracker), never per generation.
func Loop(s Stepper, opts Options, out *core.RunStats) Totals {
	if opts.Stop == nil {
		panic("engine: Options.Stop is required")
	}
	start := time.Now()
	dir := s.Direction()
	var totals Totals

	// best tracking: a single pooled tracker individual, cloned once and
	// copied over (not re-cloned) on every improving generation.
	bestFit := dir.Worst()
	var bestInd *core.Individual
	if !opts.SkipBest {
		if ref, f := s.Best(); dir.Better(f, bestFit) {
			bestFit = f
			if ref != nil {
				bestInd = ref.Clone()
			}
		}
	}
	if opts.Target != nil && opts.InitialSolve && !out.Solved && opts.Target.Solved(bestFit) {
		out.Solved = true
		out.SolvedAtEval = s.Evaluations()
		out.SolvedAtGen = 0
	}

	status := core.Status{
		Generation:  0,
		Evaluations: s.Evaluations(),
		BestFitness: bestFit,
		Improved:    true,
	}
	if opts.Trace && opts.InitialTracePoint {
		out.Trace = append(out.Trace, core.TracePoint{
			Generation: 0, Evaluations: status.Evaluations,
			Best: bestFit, Mean: meanOf(s),
		})
	}
	for _, o := range opts.Observers {
		o.OnGeneration(status)
	}

	haltReason := ""
	if opts.HaltOnSolve && out.Solved {
		haltReason = "target reached"
	}
	for haltReason == "" && !opts.Stop.Done(status) {
		info := s.Step(status.Generation + 1)
		totals.Migrations += info.Migrations
		totals.Restarts += info.Restarts
		if info.Restarts > 0 {
			for _, o := range opts.Observers {
				o.OnRestart(status.Generation+1, info.Restarts)
			}
		}
		if info.Rewound {
			// The step rolled back to a checkpoint: no generation
			// completed, so no accounting and no OnGeneration.
			status.Generation = info.ResumeAt
			status.Improved = false
			if info.Halt {
				haltReason = "model halt"
			}
			continue
		}
		status.Generation++
		status.Evaluations = s.Evaluations()
		status.Improved = false
		if !opts.SkipBest {
			ref, f := s.Best()
			if dir.Better(f, bestFit) {
				bestFit = f
				status.Improved = true
				if ref != nil {
					if bestInd == nil {
						bestInd = ref.Clone()
					} else {
						bestInd.CopyFrom(ref)
					}
				}
			}
		}
		status.BestFitness = bestFit
		if opts.Target != nil && !out.Solved && opts.Target.Solved(bestFit) {
			out.Solved = true
			out.SolvedAtEval = status.Evaluations
			out.SolvedAtGen = status.Generation
		}
		if info.Migrations > 0 {
			for _, o := range opts.Observers {
				o.OnMigration(status.Generation, info.Migrations)
			}
		}
		if opts.Trace {
			out.Trace = append(out.Trace, core.TracePoint{
				Generation: status.Generation, Evaluations: status.Evaluations,
				Best: bestFit, Mean: meanOf(s),
			})
		}
		for _, o := range opts.Observers {
			o.OnGeneration(status)
		}
		if info.Halt {
			haltReason = "model halt"
		} else if opts.HaltOnSolve && out.Solved {
			haltReason = "target reached"
		}
	}

	out.Best = bestInd
	out.BestFitness = bestFit
	out.Generations = status.Generation
	out.Evaluations = s.Evaluations()
	out.Elapsed = time.Since(start)
	if haltReason != "" {
		out.StopReason = haltReason
	} else if any, ok := opts.Stop.(core.AnyOf); ok {
		out.StopReason = any.FiredReason(status)
	} else {
		out.StopReason = opts.Stop.Reason()
	}
	for _, o := range opts.Observers {
		o.OnDone(out)
	}
	return totals
}

// meanOf returns the stepper's mean fitness when it reports one.
func meanOf(s Stepper) float64 {
	if m, ok := s.(MeanReporter); ok {
		return m.MeanFitness()
	}
	return 0
}
