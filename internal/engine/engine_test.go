package engine

import (
	"fmt"
	"reflect"
	"testing"

	"pga/internal/core"
)

// fakeGenome is a one-gene genome for exercising the loop.
type fakeGenome struct{ v int }

func (g *fakeGenome) Clone() core.Genome { c := *g; return &c }
func (g *fakeGenome) Len() int           { return 1 }
func (g *fakeGenome) String() string     { return fmt.Sprintf("fg(%d)", g.v) }

// script describes what one Step call reports.
type script struct {
	info    StepInfo
	fitness float64 // best fitness after the step
}

// fakeStepper replays a fixed script: fitness starts at start and follows
// the per-step values; evaluations advance by evalsPer per step.
type fakeStepper struct {
	steps    []script
	start    float64
	evalsPer int64

	calls  []int // gens passed to Step, for assertion
	pos    int
	evals  int64
	best   *core.Individual
	noBest bool
	mean   float64
}

func (f *fakeStepper) Step(gen int) StepInfo {
	f.calls = append(f.calls, gen)
	s := f.steps[f.pos]
	f.pos++
	f.evals += f.evalsPer
	if f.best == nil {
		f.best = core.NewIndividual(&fakeGenome{})
		f.best.Evaluated = true
	}
	f.best.Fitness = s.fitness
	f.best.Genome.(*fakeGenome).v = f.pos
	return s.info
}

func (f *fakeStepper) Best() (*core.Individual, float64) {
	if f.noBest {
		return nil, core.Maximize.Worst()
	}
	if f.best == nil {
		return nil, f.start
	}
	return f.best, f.best.Fitness
}

func (f *fakeStepper) Evaluations() int64        { return f.evals }
func (f *fakeStepper) Direction() core.Direction { return core.Maximize }
func (f *fakeStepper) MeanFitness() float64      { return f.mean }

// target solves at fitness >= at.
type target struct{ at float64 }

func (t target) Optimum() float64      { return t.at }
func (t target) Solved(f float64) bool { return f >= t.at }

// recorder logs every hook invocation as one string, in order.
type recorder struct{ events []string }

func (r *recorder) OnGeneration(s core.Status) {
	r.events = append(r.events, fmt.Sprintf("gen(%d,%g,%v)", s.Generation, s.BestFitness, s.Improved))
}
func (r *recorder) OnMigration(gen int, batches int64) {
	r.events = append(r.events, fmt.Sprintf("mig(%d,%d)", gen, batches))
}
func (r *recorder) OnRestart(gen int, restarts int64) {
	r.events = append(r.events, fmt.Sprintf("restart(%d,%d)", gen, restarts))
}
func (r *recorder) OnDone(stats *core.RunStats) {
	r.events = append(r.events, fmt.Sprintf("done(%d)", stats.Generations))
}

func flat(fits ...float64) []script {
	out := make([]script, len(fits))
	for i, f := range fits {
		out[i] = script{fitness: f}
	}
	return out
}

func TestLoopRequiresStop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Loop accepted nil Stop")
		}
	}()
	Loop(&fakeStepper{}, Options{}, &core.RunStats{})
}

func TestLoopAccounting(t *testing.T) {
	s := &fakeStepper{steps: flat(1, 3, 2, 5), start: 0, evalsPer: 10}
	var out core.RunStats
	Loop(s, Options{Stop: core.MaxGenerations(4)}, &out)
	if out.Generations != 4 {
		t.Fatalf("Generations = %d, want 4", out.Generations)
	}
	if out.Evaluations != 40 {
		t.Fatalf("Evaluations = %d, want 40", out.Evaluations)
	}
	if out.BestFitness != 5 {
		t.Fatalf("BestFitness = %v, want 5 (monotone best)", out.BestFitness)
	}
	if out.Best == nil || out.Best.Fitness != 5 {
		t.Fatalf("Best = %v, want tracked individual at fitness 5", out.Best)
	}
	if out.StopReason != "max generations" {
		t.Fatalf("StopReason = %q", out.StopReason)
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(s.calls, want) {
		t.Fatalf("Step gens = %v, want %v", s.calls, want)
	}
}

func TestLoopBestIsMonotoneAndDetached(t *testing.T) {
	// Fitness dips after the peak; the tracker must hold the peak and not
	// alias the stepper's live individual.
	s := &fakeStepper{steps: flat(4, 9, 2), evalsPer: 1}
	var out core.RunStats
	Loop(s, Options{Stop: core.MaxGenerations(3)}, &out)
	if out.BestFitness != 9 {
		t.Fatalf("BestFitness = %v, want 9", out.BestFitness)
	}
	if out.Best == s.best {
		t.Fatal("Best aliases the stepper's live individual")
	}
	if out.Best.Genome.(*fakeGenome).v != 2 {
		t.Fatalf("Best genome snapshot = %d, want the gen-2 copy", out.Best.Genome.(*fakeGenome).v)
	}
}

func TestLoopHaltOnSolve(t *testing.T) {
	s := &fakeStepper{steps: flat(1, 7, 8, 9), evalsPer: 5}
	var out core.RunStats
	Loop(s, Options{
		Stop: core.MaxGenerations(4), Target: target{at: 7}, HaltOnSolve: true,
	}, &out)
	if !out.Solved || out.SolvedAtGen != 2 || out.SolvedAtEval != 10 {
		t.Fatalf("solve record = {%v %d %d}, want {true 2 10}", out.Solved, out.SolvedAtGen, out.SolvedAtEval)
	}
	if out.Generations != 2 || out.StopReason != "target reached" {
		t.Fatalf("halt = (%d, %q), want (2, target reached)", out.Generations, out.StopReason)
	}
}

func TestLoopInitialSolve(t *testing.T) {
	s := &fakeStepper{steps: flat(1), start: 10}
	var out core.RunStats
	Loop(s, Options{
		Stop: core.MaxGenerations(5), Target: target{at: 10},
		InitialSolve: true, HaltOnSolve: true,
	}, &out)
	if !out.Solved || out.SolvedAtGen != 0 {
		t.Fatalf("initial population not detected as solved: %+v", out)
	}
	if out.Generations != 0 || len(s.calls) != 0 {
		t.Fatalf("loop stepped a solved initial population: gens=%d steps=%v", out.Generations, s.calls)
	}
}

func TestLoopModelHalt(t *testing.T) {
	s := &fakeStepper{steps: []script{{fitness: 1}, {fitness: 2, info: StepInfo{Halt: true}}, {fitness: 3}}}
	var out core.RunStats
	Loop(s, Options{Stop: core.MaxGenerations(100)}, &out)
	if out.Generations != 2 || out.StopReason != "model halt" {
		t.Fatalf("model halt = (%d, %q), want (2, model halt)", out.Generations, out.StopReason)
	}
}

func TestLoopRewind(t *testing.T) {
	// Step 2 rewinds to generation 1: the loop must re-run generation 2
	// and report no OnGeneration for the rewound attempt.
	s := &fakeStepper{steps: []script{
		{fitness: 1},
		{info: StepInfo{Rewound: true, ResumeAt: 1, Restarts: 1}},
		{fitness: 2},
		{fitness: 3},
	}}
	rec := &recorder{}
	var out core.RunStats
	totals := Loop(s, Options{Stop: core.MaxGenerations(3), Observers: []Observer{rec}}, &out)
	if out.Generations != 3 {
		t.Fatalf("Generations = %d, want 3", out.Generations)
	}
	if totals.Restarts != 1 {
		t.Fatalf("Totals.Restarts = %d, want 1", totals.Restarts)
	}
	// Step is re-invoked for generation 2 after the rewind.
	if want := []int{1, 2, 2, 3}; !reflect.DeepEqual(s.calls, want) {
		t.Fatalf("Step gens = %v, want %v", s.calls, want)
	}
	want := []string{
		"gen(0,0,true)",
		"gen(1,1,true)",
		"restart(2,1)", // the rewound attempt fires OnRestart but no OnGeneration
		"gen(2,2,true)",
		"gen(3,3,true)",
		"done(3)",
	}
	if !reflect.DeepEqual(rec.events, want) {
		t.Fatalf("events = %v, want %v", rec.events, want)
	}
}

func TestLoopObserverOrderingAndDeterminism(t *testing.T) {
	run := func() []string {
		s := &fakeStepper{steps: []script{
			{fitness: 1},
			{fitness: 2, info: StepInfo{Migrations: 3, Restarts: 1}},
			{fitness: 2},
		}}
		rec := &recorder{}
		var out core.RunStats
		Loop(s, Options{Stop: core.MaxGenerations(3), Observers: []Observer{rec}}, &out)
		return rec.events
	}
	first := run()
	want := []string{
		"gen(0,0,true)",
		"gen(1,1,true)",
		"restart(2,1)", // per-generation order: OnRestart, OnMigration, OnGeneration
		"mig(2,3)",
		"gen(2,2,true)",
		"gen(3,2,false)",
		"done(3)",
	}
	if !reflect.DeepEqual(first, want) {
		t.Fatalf("events = %v, want %v", first, want)
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d diverged: %v vs %v", i, again, first)
		}
	}
}

func TestLoopObserverSliceOrder(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	order := []string{}
	probe := Funcs{Generation: func(core.Status) { order = append(order, "probe") }}
	s := &fakeStepper{steps: flat(1)}
	var out core.RunStats
	Loop(s, Options{Stop: core.MaxGenerations(1), Observers: []Observer{a, probe, b}}, &out)
	// a fires before probe before b at every hook; spot-check counts line up.
	if len(a.events) != len(b.events) || len(a.events) == 0 {
		t.Fatalf("observer fan-out uneven: %d vs %d", len(a.events), len(b.events))
	}
	if len(order) != 2 { // gen 0 + gen 1
		t.Fatalf("middle observer fired %d times, want 2", len(order))
	}
}

func TestLoopTrace(t *testing.T) {
	s := &fakeStepper{steps: flat(1, 2), start: 0.5, evalsPer: 4, mean: 0.25}
	var out core.RunStats
	Loop(s, Options{Stop: core.MaxGenerations(2), Trace: true, InitialTracePoint: true}, &out)
	if len(out.Trace) != 3 {
		t.Fatalf("trace length = %d, want 3 (gen 0..2)", len(out.Trace))
	}
	tp := out.Trace[0]
	if tp.Generation != 0 || tp.Best != 0.5 || tp.Mean != 0.25 {
		t.Fatalf("gen-0 trace point = %+v", tp)
	}
	if out.Trace[2].Generation != 2 || out.Trace[2].Evaluations != 8 {
		t.Fatalf("gen-2 trace point = %+v", out.Trace[2])
	}

	// Without InitialTracePoint the gen-0 sample is omitted.
	s2 := &fakeStepper{steps: flat(1, 2), evalsPer: 4}
	var out2 core.RunStats
	Loop(s2, Options{Stop: core.MaxGenerations(2), Trace: true}, &out2)
	if len(out2.Trace) != 2 || out2.Trace[0].Generation != 1 {
		t.Fatalf("trace without initial point = %+v", out2.Trace)
	}
}

func TestLoopSkipBest(t *testing.T) {
	s := &fakeStepper{steps: flat(5, 6)}
	var out core.RunStats
	Loop(s, Options{Stop: core.MaxGenerations(2), SkipBest: true}, &out)
	if out.Best != nil {
		t.Fatalf("SkipBest still tracked an individual: %v", out.Best)
	}
	if out.BestFitness != core.Maximize.Worst() {
		t.Fatalf("SkipBest BestFitness = %v, want Worst()", out.BestFitness)
	}
}

func TestLoopAnyOfFiredReason(t *testing.T) {
	s := &fakeStepper{steps: flat(1, 2, 3), evalsPer: 100}
	var out core.RunStats
	Loop(s, Options{Stop: core.AnyOf{core.MaxGenerations(50), core.MaxEvaluations(300)}}, &out)
	if out.Generations != 3 || out.StopReason != "max evaluations" {
		t.Fatalf("AnyOf halt = (%d, %q), want (3, max evaluations)", out.Generations, out.StopReason)
	}
}

func TestLoopStagnationStatePreserved(t *testing.T) {
	// The loop polls Stop exactly once per generation, so a Stagnation(3)
	// over a flat trajectory fires after exactly 3 non-improving polls.
	s := &fakeStepper{steps: flat(5, 5, 5, 5, 5, 5, 5, 5)}
	var out core.RunStats
	Loop(s, Options{Stop: core.AnyOf{core.MaxGenerations(100), core.NewStagnation(3)}}, &out)
	// Poll at gen0 (Improved=true), then gens 1..3 flat after the gen-1
	// improvement from Worst() to 5: stagnation counts gens 2,3,4.
	if out.StopReason != "stagnation" {
		t.Fatalf("StopReason = %q, want stagnation", out.StopReason)
	}
	if out.Generations != 4 {
		t.Fatalf("Generations = %d, want 4", out.Generations)
	}
}

func TestFuncsNilSafe(t *testing.T) {
	var f Funcs
	f.OnGeneration(core.Status{})
	f.OnMigration(1, 2)
	f.OnRestart(1, 2)
	f.OnDone(&core.RunStats{})

	var called []string
	f2 := Funcs{
		Generation: func(core.Status) { called = append(called, "g") },
		Migration:  func(int, int64) { called = append(called, "m") },
		Restart:    func(int, int64) { called = append(called, "r") },
		Done:       func(*core.RunStats) { called = append(called, "d") },
	}
	f2.OnGeneration(core.Status{})
	f2.OnMigration(1, 2)
	f2.OnRestart(1, 2)
	f2.OnDone(&core.RunStats{})
	if got := fmt.Sprint(called); got != "[g m r d]" {
		t.Fatalf("Funcs dispatch = %v", got)
	}
}
