package pga

import "testing"

// These tests pin the stop-condition uniformity the shared run loop
// guarantees: every runtime that counts generations halts at exactly the
// same generation for the same budget, reports the firing condition's
// reason, and records Generations == SolvedAtGen when a target halt ends
// the run. Before internal/engine each model hand-rolled its loop and the
// boundary semantics could drift per model; now they cannot. The HGA is
// the one deliberate exception — its budget is evaluation cost, not
// generations (see DESIGN §9).

// stopRuntimes are the runtimes that accept an arbitrary StopCondition.
func stopRuntimes(prob Problem, seed uint64) map[string]func(stop StopCondition) *RunStats {
	gaCfg := func(r *RNG) GAConfig {
		return GAConfig{
			Problem:   prob,
			PopSize:   20,
			Crossover: UniformCrossover{},
			Mutator:   BitFlip{},
			RNG:       r,
		}
	}
	return map[string]func(stop StopCondition) *RunStats{
		"generational": func(stop StopCondition) *RunStats {
			res := Run(NewGenerational(gaCfg(NewRNG(seed))), RunOptions{Stop: stop})
			return &res.RunStats
		},
		"steady-state": func(stop StopCondition) *RunStats {
			res := Run(NewSteadyState(gaCfg(NewRNG(seed))), RunOptions{Stop: stop})
			return &res.RunStats
		},
		"parallel-generational": func(stop StopCondition) *RunStats {
			res := Run(NewParallelGenerational(gaCfg(NewRNG(seed)), 2), RunOptions{Stop: stop})
			return &res.RunStats
		},
		"masterslave-farm": func(stop StopCondition) *RunStats {
			cfg := gaCfg(NewRNG(seed))
			cfg.Evaluator = NewFarm(seed, UniformWorkers(3))
			res := Run(NewGenerational(cfg), RunOptions{Stop: stop})
			return &res.RunStats
		},
		"cellular": func(stop StopCondition) *RunStats {
			res := Run(NewCellular(CellularConfig{
				Problem:   prob,
				Rows:      5,
				Cols:      5,
				Update:    LineSweepUpdate,
				Crossover: UniformCrossover{},
				Mutator:   BitFlip{},
				RNG:       NewRNG(seed),
			}), RunOptions{Stop: stop})
			return &res.RunStats
		},
		"island-sequential": func(stop StopCondition) *RunStats {
			m := NewIslands(IslandConfig{
				Demes:    3,
				Topology: Ring,
				GA: GAConfig{
					Problem:   prob,
					PopSize:   12,
					Crossover: UniformCrossover{},
					Mutator:   BitFlip{},
				},
				Migration: Migration{Interval: 4, Count: 1},
				Seed:      seed,
			})
			res := m.RunSequential(stop, false)
			return &res.RunStats
		},
	}
}

// TestStopUniformityMaxGenerations: with a budget no runtime can solve
// within, every runtime halts at exactly the budget generation with the
// budget's reason — including the maxGens-parameterised parallel modes.
func TestStopUniformityMaxGenerations(t *testing.T) {
	const gens = 12
	prob := OneMax(400) // unsolvable in 12 generations at these sizes
	for name, run := range stopRuntimes(prob, 11) {
		stats := run(MaxGenerations(gens))
		if stats.Generations != gens {
			t.Errorf("%s: halted at generation %d, want %d", name, stats.Generations, gens)
		}
		if stats.StopReason != "max generations" {
			t.Errorf("%s: StopReason = %q, want max generations", name, stats.StopReason)
		}
		if stats.Solved {
			t.Errorf("%s: reported solved on an unsolvable budget", name)
		}
	}

	m := NewIslands(IslandConfig{
		Demes:    3,
		Topology: Ring,
		GA: GAConfig{
			Problem:   prob,
			PopSize:   12,
			Crossover: UniformCrossover{},
			Mutator:   BitFlip{},
		},
		Migration: Migration{Interval: 4, Count: 1, Sync: true},
		Seed:      11,
	})
	if res := m.RunParallel(gens, false); res.Generations != gens || res.StopReason != "max generations" {
		t.Errorf("island-sync-parallel: halted at (%d, %q), want (%d, max generations)",
			res.Generations, res.StopReason, gens)
	}

	p := NewP2P(P2PConfig{
		Problem: prob,
		Peers:   4,
		NewEngine: func(peer int, r *RNG) Engine {
			return NewGenerational(GAConfig{
				Problem:   prob,
				PopSize:   10,
				Crossover: UniformCrossover{},
				Mutator:   BitFlip{},
				RNG:       r,
			})
		},
		Seed: 11,
	})
	if res := p.Run(gens); res.Generations != gens || res.StopReason != "max generations" {
		t.Errorf("p2p: halted at (%d, %q), want (%d, max generations)",
			res.Generations, res.StopReason, gens)
	}

	if res := RunSIM(SIMConfig{
		Problem:     ZDT1(6),
		Scenario:    SIMScenarios()[2],
		DemeSize:    12,
		Generations: gens,
		Seed:        11,
	}); res.Generations != gens || res.StopReason != "max generations" {
		t.Errorf("sim: halted at (%d, %q), want (%d, max generations)",
			res.Generations, res.StopReason, gens)
	}
}

// TestStopUniformityTarget: when a target halt ends the run, every runtime
// reports Solved with the halting generation equal to the solve
// generation and a consistent solve record.
func TestStopUniformityTarget(t *testing.T) {
	prob := OneMax(16) // easily solvable: every runtime reaches the optimum
	for name, run := range stopRuntimes(prob, 13) {
		stats := run(AnyOf{MaxGenerations(2000), Target(prob)})
		if !stats.Solved {
			t.Errorf("%s: failed to solve OneMax(16): best %v", name, stats.BestFitness)
			continue
		}
		if stats.Generations != stats.SolvedAtGen {
			t.Errorf("%s: halted at generation %d but solved at %d",
				name, stats.Generations, stats.SolvedAtGen)
		}
		if stats.SolvedAtEval <= 0 || stats.SolvedAtEval > stats.Evaluations {
			t.Errorf("%s: SolvedAtEval = %d outside (0, %d]",
				name, stats.SolvedAtEval, stats.Evaluations)
		}
		if stats.StopReason != "target fitness reached" {
			t.Errorf("%s: StopReason = %q, want target fitness reached", name, stats.StopReason)
		}
	}
}

// TestStopUniformityAnyOf: a composite condition reports the reason of
// the child that actually fired, identically across runtimes.
func TestStopUniformityAnyOf(t *testing.T) {
	const gens = 8
	prob := OneMax(400)
	for name, run := range stopRuntimes(prob, 17) {
		stats := run(AnyOf{Target(prob), MaxGenerations(gens)})
		if stats.Generations != gens || stats.StopReason != "max generations" {
			t.Errorf("%s: AnyOf halt = (%d, %q), want (%d, max generations)",
				name, stats.Generations, stats.StopReason, gens)
		}
	}
}
