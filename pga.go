// Package pga is a parallel genetic algorithms library for Go.
//
// It implements the full taxonomy of parallel GA models surveyed in
// Konfršt, "Parallel Genetic Algorithms: Advances, Computing Trends,
// Applications and Perspectives" (IPPS 2004):
//
//   - sequential baselines: generational (with generation gap) and
//     steady-state GAs (NewGenerational, NewSteadyState);
//   - the global master–slave model: parallel fitness evaluation with
//     fault tolerance (NewFarm);
//   - the coarse-grained island model: goroutine-per-deme evolution with
//     channel-based migration over configurable topologies (NewIslands);
//   - the fine-grained cellular model: toroidal grids with synchronous and
//     asynchronous update policies (NewCellular);
//   - the shared-memory global model with fully parallel reproduction
//     (NewParallelGenerational — Bethke/Grefenstette);
//   - the hierarchical multi-fidelity model of Sefrioui & Périaux
//     (NewHGA);
//   - the specialized island model of Xiao & Armstrong for multi-objective
//     problems (RunSIM);
//   - a DREAM-style peer-to-peer gossip overlay with node churn (NewP2P).
//
// Long runs checkpoint and resume exactly (CaptureCheckpoint /
// LoadCheckpoint): a restored run is bit-identical to an uninterrupted
// one.
//
// The library is deterministic: every run is reproducible from its seed,
// including parallel island runs in synchronous mode (asynchronous
// migration is the only scheduling-dependent mode, as in the systems the
// survey reviews).
//
// A minimal island-model run:
//
//	prob := pga.OneMax(128)
//	res := pga.NewIslands(pga.IslandConfig{
//		Demes:    8,
//		Topology: pga.Ring,
//		GA: pga.GAConfig{
//			Problem:   prob,
//			PopSize:   50,
//			Crossover: pga.UniformCrossover{},
//			Mutator:   pga.BitFlip{},
//		},
//		Migration: pga.Migration{Interval: 10, Count: 2},
//		Seed:      42,
//	}).RunSequential(pga.AnyOf{
//		pga.MaxGenerations(500),
//		pga.Target(prob),
//	}, false)
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping between packages and the surveyed literature.
package pga

import (
	"pga/internal/cellular"
	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/hga"
	"pga/internal/island"
	"pga/internal/masterslave"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/p2p"
	"pga/internal/persist"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/sim"
	"pga/internal/spec"
	"pga/internal/supervise"
	"pga/internal/topology"
)

// Core abstractions.
type (
	// Problem is an optimisation problem: genome factory plus fitness.
	Problem = core.Problem
	// Genome is an encoded candidate solution.
	Genome = core.Genome
	// Individual pairs a genome with its fitness.
	Individual = core.Individual
	// Population is an ordered set of individuals (a deme).
	Population = core.Population
	// Direction states whether fitness is maximised or minimised.
	Direction = core.Direction
	// Result summarises a sequential run.
	Result = core.Result
	// RunStats is the accounting block shared by every runtime's result:
	// all Result types (Result, IslandResult, HGAResult, SIMResult,
	// P2PResult) embed it, so the common fields read uniformly.
	RunStats = core.RunStats
	// Status is the per-step snapshot passed to stop conditions.
	Status = core.Status
	// StopCondition terminates runs.
	StopCondition = core.StopCondition
	// RNG is the library's deterministic splittable random source.
	RNG = rng.Source
)

// Fitness directions.
const (
	Maximize = core.Maximize
	Minimize = core.Minimize
)

// NewRNG returns a deterministic random source seeded with seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Stop conditions.
type (
	// MaxGenerations stops after N steps.
	MaxGenerations = core.MaxGenerations
	// MaxEvaluations stops after N fitness evaluations.
	MaxEvaluations = core.MaxEvaluations
	// TargetFitness stops at a fitness threshold.
	TargetFitness = core.TargetFitness
	// AnyOf stops when any child condition fires.
	AnyOf = core.AnyOf
)

// NewStagnation stops after limit non-improving steps.
func NewStagnation(limit int) StopCondition { return core.NewStagnation(limit) }

// Target returns a stop condition that fires when p's known optimum is
// reached; it panics if p has no known optimum.
func Target(p Problem) StopCondition {
	ta, ok := p.(core.TargetAware)
	if !ok {
		panic("pga: Target requires a problem with a known optimum")
	}
	return core.TargetFitness{Target: ta.Optimum(), Dir: p.Direction()}
}

// Genome representations.
type (
	// BitString is a binary chromosome.
	BitString = genome.BitString
	// RealVector is a bounded real-valued chromosome.
	RealVector = genome.RealVector
	// IntVector is a bounded integer chromosome.
	IntVector = genome.IntVector
	// Permutation is an ordering chromosome.
	Permutation = genome.Permutation
)

// Selection operators.
type (
	// TournamentSelection is k-tournament parent selection.
	TournamentSelection = operators.Tournament
	// RouletteSelection is fitness-proportionate selection.
	RouletteSelection = operators.Roulette
	// RankSelection is linear-ranking selection.
	RankSelection = operators.LinearRank
	// TruncationSelection selects among the best fraction.
	TruncationSelection = operators.Truncation
)

// Crossover operators.
type (
	// OnePointCrossover cuts once.
	OnePointCrossover = operators.OnePoint
	// TwoPointCrossover cuts twice.
	TwoPointCrossover = operators.TwoPoint
	// UniformCrossover exchanges genes independently.
	UniformCrossover = operators.Uniform
	// SBXCrossover is simulated binary crossover for real vectors.
	SBXCrossover = operators.SBX
	// BLXCrossover is blend crossover for real vectors.
	BLXCrossover = operators.BLX
	// OXCrossover is order crossover for permutations.
	OXCrossover = operators.OX
	// PMXCrossover is partially-mapped crossover for permutations.
	PMXCrossover = operators.PMX
	// ERXCrossover is edge-recombination crossover for permutations.
	ERXCrossover = operators.ERX
	// UniformWordCrossover is word-granular uniform crossover for bit
	// strings: one RNG word serves 64 genes (packed-layout fast path;
	// draws differ from UniformCrossover).
	UniformWordCrossover = operators.UniformWord
	// KPointWordCrossover is k-point crossover for bit strings executed
	// as masked word swaps (same cut draws as KPointCrossover, word-wise
	// segment exchange).
	KPointWordCrossover = operators.KPointWord
)

// Mutation operators.
type (
	// BitFlip flips bits with a per-gene probability.
	BitFlip = operators.BitFlip
	// BlockFlipMutation flips bits word-at-a-time with per-gene
	// probability 2^-K (K AND-ed mask draws per 64-gene word).
	BlockFlipMutation = operators.BlockFlip
	// GaussianMutation perturbs real genes.
	GaussianMutation = operators.Gaussian
	// PolynomialMutation is Deb's polynomial mutation.
	PolynomialMutation = operators.Polynomial
	// SwapMutation exchanges two genes.
	SwapMutation = operators.Swap
	// InversionMutation reverses a permutation slice.
	InversionMutation = operators.Inversion
)

// Benchmark problems (see internal/problems for the full catalogue).
var (
	// Sphere is the unimodal sphere function (minimised).
	Sphere = problems.Sphere
	// Rastrigin is the multimodal Rastrigin function (minimised).
	Rastrigin = problems.Rastrigin
	// Rosenbrock is the banana-valley function (minimised).
	Rosenbrock = problems.Rosenbrock
	// Ackley is the Ackley function (minimised).
	Ackley = problems.Ackley
	// Griewank is the Griewank function (minimised).
	Griewank = problems.Griewank
	// Schwefel is Schwefel's function (minimised).
	Schwefel = problems.Schwefel
	// Step is De Jong's plateau function F3 (minimised).
	Step = problems.Step
	// Foxholes is Shekel's foxholes, De Jong F5 (minimised, 2-D).
	Foxholes = problems.Foxholes
)

// OneMax returns the n-bit OneMax problem.
func OneMax(n int) Problem { return problems.OneMax{N: n} }

// BatchProblem is the optional batched-fitness extension: problems
// implementing it are handed whole pending sets by the serial evaluator
// and the master–slave farm.
type BatchProblem = core.BatchProblem

// NewCachedProblem wraps p with a bounded fitness memo-cache keyed by
// genome content (capacity <= 0 selects the 65536-entry default). Cache
// hit/miss counters surface on Result.CacheHits / Result.CacheMisses.
func NewCachedProblem(p Problem, capacity int) Problem {
	return core.NewCachedProblem(p, capacity)
}

// DeceptiveTrap returns a deceptive trap problem with blocks of k bits.
func DeceptiveTrap(blocks, k int) Problem { return problems.DeceptiveTrap{Blocks: blocks, K: k} }

// Engines.
type (
	// Engine is a stepwise-evolving population.
	Engine = ga.Engine
	// GAConfig configures the sequential engines.
	GAConfig = ga.Config
	// RunOptions tunes Run.
	RunOptions = ga.RunOptions
	// Observer receives ordered lifecycle hooks from the shared run loop
	// (OnGeneration, OnMigration, OnRestart, OnDone); pass implementations
	// through RunOptions.Observers.
	Observer = engine.Observer
	// ObserverFuncs adapts optional functions to Observer; nil fields are
	// no-ops.
	ObserverFuncs = engine.Funcs
)

// NewGenerational returns a generational GA engine. If cfg.RNG is nil a
// stream seeded with 0 is used.
func NewGenerational(cfg GAConfig) Engine {
	if cfg.RNG == nil {
		cfg.RNG = rng.New(0)
	}
	return ga.NewGenerational(cfg)
}

// NewSteadyState returns a steady-state GA engine with replace-worst
// insertion.
func NewSteadyState(cfg GAConfig) Engine {
	if cfg.RNG == nil {
		cfg.RNG = rng.New(0)
	}
	return ga.NewSteadyState(cfg, true)
}

// NewParallelGenerational returns the shared-memory global PGA: the whole
// reproduction step (selection, variation, evaluation) runs across the
// given number of workers over one panmictic population — Bethke's and
// Grefenstette's global model. Deterministic per (seed, workers).
func NewParallelGenerational(cfg GAConfig, workers int) Engine {
	if cfg.RNG == nil {
		cfg.RNG = rng.New(0)
	}
	return ga.NewParallelGenerational(cfg, workers)
}

// Run drives an engine until the stop condition fires.
func Run(e Engine, opts RunOptions) *Result { return ga.Run(e, opts) }

// TopologyKind selects a built-in island topology.
type TopologyKind int

// Built-in topologies for IslandConfig.
const (
	// Ring is a unidirectional ring.
	Ring TopologyKind = iota
	// BiRing is a bidirectional ring.
	BiRing
	// Star is a hub-and-leaves topology.
	Star
	// Complete is fully connected.
	Complete
	// Hypercube requires a power-of-two deme count.
	Hypercube
	// Isolated has no links (no migration).
	Isolated
)

// Migration is the island migration policy (re-exported).
type Migration = migration.Policy

// Migrant selection and integration policies.
type (
	// SelectBestMigrants emigrates the deme's best.
	SelectBestMigrants = migration.SelectBest
	// SelectRandomMigrants emigrates random members.
	SelectRandomMigrants = migration.SelectRandom
	// ReplaceWorstWith replaces the worst members unconditionally.
	ReplaceWorstWith = migration.ReplaceWorst
	// ReplaceWorstIfBetter accepts only improving migrants.
	ReplaceWorstIfBetter = migration.ReplaceWorstIfBetter
)

// Fault tolerance (deme supervision; see internal/supervise).
type (
	// Resilience tunes the island supervision layer: checkpoint cadence,
	// restart budget, heartbeat deadline, backoff and the async
	// dead-letter retry bound. The zero value selects sensible defaults.
	Resilience = supervise.Config
	// FaultPlan deterministically injects panics and hangs at exact
	// (deme, generation) coordinates — the testing harness behind the
	// supervision layer.
	FaultPlan = supervise.FaultPlan
	// Fault is one scripted fault of a FaultPlan.
	Fault = supervise.Fault
	// FaultKind classifies an injected fault.
	FaultKind = supervise.FaultKind
	// DemeFailure is the typed event a supervised deme failure becomes.
	DemeFailure = supervise.DemeFailure
	// FailureKind classifies a deme failure.
	FailureKind = supervise.FailureKind
)

// Fault and failure kinds.
const (
	// FaultPanic panics inside the deme's step.
	FaultPanic = supervise.FaultPanic
	// FaultHang stalls the deme's step past the heartbeat deadline.
	FaultHang = supervise.FaultHang
	// FailurePanic is a recovered step panic.
	FailurePanic = supervise.FailurePanic
	// FailureTimeout is a missed heartbeat deadline.
	FailureTimeout = supervise.FailureTimeout
)

// NewFaultPlan returns an empty fault-injection plan; chain PanicAt,
// PanicTimes and HangAt to script faults.
func NewFaultPlan() *FaultPlan { return supervise.NewFaultPlan() }

// IslandConfig configures an island-model (coarse-grained) PGA.
type IslandConfig struct {
	// Demes is the number of islands.
	Demes int
	// Topology is one of the built-in kinds.
	Topology TopologyKind
	// GA configures each deme's engine (the RNG field is ignored: every
	// deme receives its own stream split from Seed).
	GA GAConfig
	// Migration is the migration policy.
	Migration Migration
	// Seed seeds the whole model.
	Seed uint64
	// Resilience enables deme supervision for RunParallel: panic
	// recovery, checkpoint/restart, hang detection, topology healing.
	// nil runs unsupervised (set automatically when Faults is non-nil).
	Resilience *Resilience
	// Faults optionally injects deterministic faults into a supervised
	// run (testing and experiments; ignored when Resilience is nil and
	// Faults is nil).
	Faults *FaultPlan
}

// IslandModel is the coarse-grained PGA (re-exported).
type IslandModel = island.Model

// IslandResult summarises an island run (re-exported).
type IslandResult = island.Result

// buildTopology materialises a TopologyKind for n demes.
func buildTopology(kind TopologyKind, n int) topology.Topology {
	switch kind {
	case BiRing:
		return topology.BiRing(n)
	case Star:
		return topology.Star(n)
	case Complete:
		return topology.Complete(n)
	case Hypercube:
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		if 1<<uint(d) != n {
			panic("pga: Hypercube topology requires a power-of-two deme count")
		}
		return topology.Hypercube(d)
	case Isolated:
		return topology.Isolated(n)
	default:
		return topology.Ring(n)
	}
}

// NewIslands builds an island model with identical generational demes.
func NewIslands(cfg IslandConfig) *IslandModel {
	gaCfg := cfg.GA
	return NewIslandsWithEngines(cfg, func(deme int, r *RNG) Engine {
		c := gaCfg
		c.RNG = r
		return ga.NewGenerational(c)
	})
}

// NewIslandsWithEngines builds an island model with a custom per-deme
// engine factory — for heterogeneous demes (Alba & Troya 2002's mixed
// schemes), cellular demes, or the hybrid model where each deme evaluates
// through its own master–slave farm (the cluster-of-SMPs pattern of the
// survey's §3.3). The factory replaces the GA field of cfg; everything
// else (topology, migration, seed, resilience) applies unchanged, and the
// factory is also what supervision uses to rebuild a crashed deme.
func NewIslandsWithEngines(cfg IslandConfig, newEngine func(deme int, r *RNG) Engine) *IslandModel {
	if cfg.Demes == 0 {
		cfg.Demes = 4
	}
	res := cfg.Resilience
	if res == nil && cfg.Faults != nil {
		// A fault plan without explicit tuning still wants supervision.
		res = &Resilience{}
	}
	return island.New(island.Config{
		Topology:   buildTopology(cfg.Topology, cfg.Demes),
		Policy:     cfg.Migration,
		NewEngine:  func(deme int, r *rng.Source) ga.Engine { return newEngine(deme, r) },
		Seed:       cfg.Seed,
		Resilience: res,
		Faults:     cfg.Faults,
	})
}

// Master–slave model.
type (
	// Farm is the parallel fitness-evaluation farm (plug it into
	// GAConfig.Evaluator).
	Farm = masterslave.Farm
	// WorkerSpec configures one farm worker.
	WorkerSpec = masterslave.WorkerSpec
)

// NewFarm creates a fault-tolerant evaluation farm.
func NewFarm(seed uint64, specs []WorkerSpec) *Farm { return masterslave.NewFarm(seed, specs) }

// UniformWorkers returns n identical fault-free workers.
func UniformWorkers(n int) []WorkerSpec { return masterslave.Uniform(n) }

// Cellular model.
type (
	// CellularConfig configures the fine-grained GA.
	CellularConfig = cellular.Config
	// UpdatePolicy selects the cell-update schedule.
	UpdatePolicy = cellular.UpdatePolicy
)

// Cellular update policies.
const (
	// SyncUpdate updates all cells from the previous grid.
	SyncUpdate = cellular.Synchronous
	// LineSweepUpdate updates in row-major order in place.
	LineSweepUpdate = cellular.LineSweep
	// NewRandomSweepUpdate uses a fresh random order per sweep.
	NewRandomSweepUpdate = cellular.NewRandomSweep
)

// NewCellular returns a cellular GA engine (usable standalone or as an
// island deme).
func NewCellular(cfg CellularConfig) Engine {
	if cfg.RNG == nil {
		cfg.RNG = rng.New(0)
	}
	return cellular.New(cfg)
}

// Hierarchical model.
type (
	// HGAConfig configures the hierarchical multi-fidelity GA.
	HGAConfig = hga.Config
	// HGAResult summarises an HGA run.
	HGAResult = hga.Result
	// MultiFidelity is a problem evaluable at several fidelity levels.
	MultiFidelity = hga.MultiFidelity
)

// NewHGA builds a hierarchical GA.
func NewHGA(cfg HGAConfig) *hga.Model { return hga.New(cfg) }

// QuantizedFidelity wraps a real-valued benchmark into a 3-level
// multi-fidelity problem.
func QuantizedFidelity(inner *problems.RealFunc) MultiFidelity { return hga.NewQuantized(inner) }

// Specialized island model (multi-objective).
type (
	// SIMConfig configures a SIM run.
	SIMConfig = sim.Config
	// SIMResult summarises a SIM run.
	SIMResult = sim.Result
	// SIMScenario is one of the seven configurations.
	SIMScenario = sim.Scenario
	// MultiObjective is a problem with several minimised objectives.
	MultiObjective = sim.MultiObjective
)

// ZDT1 returns the classic bi-objective benchmark.
func ZDT1(dim int) MultiObjective { return sim.ZDT1{Dim: dim} }

// RunSIM executes a SIM scenario.
func RunSIM(cfg SIMConfig) *SIMResult { return sim.Run(cfg) }

// SIMScenarios lists the seven scenarios in order.
func SIMScenarios() []SIMScenario { return sim.Scenarios() }

// Checkpointing (GALOPPS-style exact save/restore; see internal/persist).
type (
	// Checkpoint is a serialisable snapshot of a population plus the RNG
	// stream driving its engine.
	Checkpoint = persist.Checkpoint
)

// CaptureCheckpoint snapshots a population and its engine stream.
func CaptureCheckpoint(pop *Population, r *RNG, generation int, evaluations int64) (*Checkpoint, error) {
	return persist.Capture(pop, r, generation, evaluations)
}

// LoadCheckpoint parses a serialised checkpoint.
func LoadCheckpoint(data []byte) (*Checkpoint, error) {
	return persist.UnmarshalCheckpoint(data)
}

// Declarative run specifications (see internal/spec and DESIGN.md §11).
// One serializable Spec names a problem, an engine, a model and a budget;
// BuildSpec materialises it into any of the runtimes above, draw-identical
// to the equivalent hand-wired construction.
type (
	// Spec is the declarative run specification: problem, genome and
	// operator choices, model and its parameters, resilience plan, budget
	// and seed — everything a run needs, as one JSON-serialisable value.
	Spec = spec.RunSpec
	// BuiltSpec is a validated Spec materialised into a runtime; its Run
	// method drives whichever model the spec selected and renders a
	// deterministic report.
	BuiltSpec = spec.Built
	// SpecReport is the deterministic run summary a built spec produces
	// (no timing fields, so run-twice output is byte-identical).
	SpecReport = spec.Report
	// SpecRunOpts tunes BuiltSpec.Run (per-generation callback, trace).
	SpecRunOpts = spec.RunOpts
	// SpecFile is one parsed config document: a single run or a sweep.
	SpecFile = spec.File
	// SpecSweep expands a base spec over axes into a deterministic run
	// matrix with per-cell derived seeds.
	SpecSweep = spec.Sweep
	// SpecError is the structured validation error a malformed spec
	// yields: one FieldError per offending field.
	SpecError = spec.Error
	// SpecFieldError locates one validation failure (field path + reason).
	SpecFieldError = spec.FieldError
)

// Spec sections, for assembling specs programmatically rather than from
// JSON.
type (
	// SpecProblem names a registry problem and its size.
	SpecProblem = spec.ProblemSpec
	// SpecEngine selects population shape and operators.
	SpecEngine = spec.EngineSpec
	// SpecOperator names one registry operator with its parameters.
	SpecOperator = spec.OperatorSpec
	// SpecGrid is the cellular grid shape.
	SpecGrid = spec.GridSpec
	// SpecIslands is the island-model section.
	SpecIslands = spec.IslandSpec
	// SpecTopology names an island topology.
	SpecTopology = spec.TopologySpec
	// SpecMigration is the migration policy section.
	SpecMigration = spec.MigrationSpec
	// SpecFault scripts one injected fault of a supervised island run.
	SpecFault = spec.FaultSpec
	// SpecFarm is the master–slave section.
	SpecFarm = spec.FarmSpec
	// SpecP2P is the gossip-overlay section.
	SpecP2P = spec.P2PSpec
	// SpecHGA is the hierarchical-model section.
	SpecHGA = spec.HGASpec
	// SpecSIM is the multi-objective SIM section.
	SpecSIM = spec.SIMSpec
	// SpecBudget is the stop-condition section.
	SpecBudget = spec.BudgetSpec
)

// ParseSpec strictly parses and validates one JSON run spec, returning
// structured field errors on malformed input (it never panics).
func ParseSpec(data []byte) (*Spec, error) { return spec.Parse(data) }

// ParseSpecFile parses a config document that is either a single run
// spec or a sweep ({"base": ..., "sweep": {...}, "replicates": N}).
func ParseSpecFile(data []byte) (*SpecFile, error) { return spec.ParseFile(data) }

// BuildSpec validates s and constructs its runtime.
func BuildSpec(s Spec) (*BuiltSpec, error) { return spec.Build(s) }

// SpecModels lists the model vocabulary a Spec accepts.
func SpecModels() []string { return spec.Models() }

// DeriveSpecSeed derives the run seed of sweep cell `cell`, replicate
// `rep`, from a base seed (cell 0 replicate 0 keeps the base verbatim).
func DeriveSpecSeed(base uint64, cell, rep int) uint64 { return spec.DeriveSeed(base, cell, rep) }

// Peer-to-peer overlay (DREAM-style; see internal/p2p).
type (
	// P2PConfig configures a gossip overlay run.
	P2PConfig = p2p.Config
	// P2PResult summarises an overlay run.
	P2PResult = p2p.Result
	// P2PNetwork is an instantiated overlay.
	P2PNetwork = p2p.Network
)

// NewP2P builds a DREAM-style peer-to-peer evolutionary overlay.
func NewP2P(cfg P2PConfig) *P2PNetwork { return p2p.New(cfg) }
