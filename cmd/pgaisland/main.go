// Command pgaisland runs ONE island of a multi-process island-model GA.
// Each process listens on its own TCP address, dials its peers, and
// exchanges migrant batches over the partition-tolerant transport
// (internal/transport); N such processes form the distributed analogue
// of `pgarun -model islands`. Peer loss never stops evolution — the
// island degrades to solo search and rejoins peers as they come back.
//
// Usage: one process per island, same -peers list (comma-separated,
// island-id order) and same -seed everywhere, distinct -self:
//
//	pgaisland -self 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	pgaisland -self 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	pgaisland -self 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Fixed port lists race against whatever else runs on the host. For
// collision-free startup (the integration test's mode), bind the
// kernel-chosen port first and exchange resolved addresses through the
// filesystem:
//
//	pgaisland -self 0 -listen 127.0.0.1:0 -addrfile d/addr.0 -peersfile d/peers
//
// Each island binds -listen (":0" picks a free port atomically), writes
// the resolved address to -addrfile, then waits for -peersfile — the
// launcher collects every addrfile and writes the full id-ordered,
// comma-separated list there. Only then is the endpoint constructed, on
// the already-bound listener, so no port is ever released and re-bound.
//
// Deterministic fault injection (-drop, -dup, -reorder, -partition,
// -crashat) wraps the outbound side of this island's endpoint with a
// transport.Faulty layer seeded by -faultseed, so a run's fault
// schedule is reproducible byte for byte.
//
// The final result is printed to stdout as a single JSON object;
// progress and transport diagnostics go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pga/internal/core"
	"pga/internal/engine"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/island"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
	"pga/internal/transport"
)

// result is the JSON document printed to stdout — the cross-process
// contract consumed by the multi-process integration test.
type result struct {
	Self         int           `json:"self"`
	Best         float64       `json:"best"`
	Solved       bool          `json:"solved"`
	Generations  int           `json:"generations"`
	Evaluations  int64         `json:"evaluations"`
	Migrations   int64         `json:"migrations"`
	DeadLettered int64         `json:"dead_lettered"`
	Restarts     int64         `json:"restarts"`
	Net          core.NetStats `json:"net"`
	StopReason   string        `json:"stop_reason"`
	ElapsedMS    int64         `json:"elapsed_ms"`
}

func main() {
	self := flag.Int("self", 0, "this island's id (index into -peers)")
	peersFlag := flag.String("peers", "", "comma-separated island addresses in id order (required unless -peersfile)")
	listen := flag.String("listen", "", "listen address to bind eagerly (use 127.0.0.1:0 for a kernel-chosen port); default is this island's -peers entry")
	addrFile := flag.String("addrfile", "", "publish the resolved -listen address to this file after binding")
	peersFile := flag.String("peersfile", "", "wait for and read the id-ordered peer address list from this file instead of -peers")
	peersWait := flag.Duration("peerswait", 30*time.Second, "how long to wait for -peersfile to appear")
	problem := flag.String("problem", "onemax", "problem key (see pgarun -list)")
	size := flag.Int("size", 64, "problem size")
	pop := flag.Int("pop", 50, "population size")
	gens := flag.Int("gens", 300, "maximum generations")
	interval := flag.Int("interval", 5, "migration interval (generations)")
	migrants := flag.Int("migrants", 2, "migrants per exchange")
	topo := flag.String("topology", "ring", "ring | biring | star | complete")
	seed := flag.Uint64("seed", 1, "shared run seed (same on every island)")
	pace := flag.Duration("pace", 0, "per-generation sleep (stretches the run for fault drills)")
	quiet := flag.Bool("quiet", false, "suppress per-generation progress")

	drop := flag.Float64("drop", 0, "fault: per-send loss probability on outbound links")
	dup := flag.Float64("dup", 0, "fault: per-send duplication probability")
	reorder := flag.Float64("reorder", 0, "fault: per-send reorder probability")
	jitter := flag.Float64("jitter", 0, "fault: jitter spread (with -maxdelay, delays sends by logical ticks)")
	maxDelay := flag.Int("maxdelay", 3, "fault: maximum delay in sends")
	partition := flag.String("partition", "", "fault: partition spec from:until:peer[;peer...] (ticks, until 0 = forever)")
	crashAt := flag.String("crashat", "", "fault: crash spec peer:at:until (ticks)")
	faultSeed := flag.Uint64("faultseed", 0, "fault schedule seed (0 = derive from -seed and -self)")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix(fmt.Sprintf("pgaisland[%d]: ", *self))

	// Bind the listener before the peer list is even known: with
	// "-listen :0" the kernel picks a free port atomically, the resolved
	// address is published via -addrfile, and the port stays bound — the
	// launcher can hand it to peers with no close-and-rebind race.
	var ln net.Listener
	if *listen != "" {
		var err error
		ln, err = net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		if *addrFile != "" {
			if err := writeFileAtomic(*addrFile, ln.Addr().String()+"\n"); err != nil {
				log.Fatal(err)
			}
		}
	}

	var addrs []string
	switch {
	case *peersFile != "":
		var err error
		addrs, err = awaitPeersFile(*peersFile, *peersWait)
		if err != nil {
			log.Fatal(err)
		}
	case *peersFlag != "":
		addrs = strings.Split(*peersFlag, ",")
	default:
		log.Fatal("need -peers or -peersfile")
	}
	n := len(addrs)
	if n < 2 {
		log.Fatal("need at least two peer addresses")
	}
	if *self < 0 || *self >= n {
		log.Fatalf("-self %d out of range for %d peers", *self, n)
	}

	spec, err := problems.Lookup(*problem)
	if err != nil {
		log.Fatal(err)
	}
	prob := spec.Make(*size, *seed)
	engineRNG, migRNG := island.WireStreams(*seed, n, *self)

	peers := make(map[int]string, n-1)
	for i, a := range addrs {
		if i != *self {
			peers[i] = strings.TrimSpace(a)
		}
	}
	tcp, err := transport.NewTCP(transport.TCPConfig{
		Self:     *self,
		Listen:   strings.TrimSpace(addrs[*self]),
		Listener: ln,
		Peers:    peers,
		Seed:     *seed + uint64(*self),
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s, %d peers", tcp.Addr(), len(peers))

	var ep transport.Endpoint = tcp
	if fspec, faulty := faultSpec(*drop, *jitter, *dup, *reorder, *maxDelay, *partition, *crashAt); faulty {
		fs := *faultSeed
		if fs == 0 {
			fs = *seed*1000003 + uint64(*self)
		}
		log.Printf("fault injection on: drop=%g dup=%g reorder=%g partitions=%d crashes=%d seed=%d",
			*drop, *dup, *reorder, len(fspec.Partitions), len(fspec.Crashes), fs)
		ep = transport.NewFaulty(tcp, fspec, fs)
	}
	defer ep.Close()

	obs := engine.Funcs{
		Generation: func(s core.Status) {
			if *pace > 0 {
				time.Sleep(*pace)
			}
			if !*quiet && s.Generation%25 == 0 {
				log.Printf("gen %4d  best %.6g  evals %d", s.Generation, s.BestFitness, s.Evaluations)
			}
		},
	}

	start := time.Now()
	res := island.RunWire(island.WireConfig{
		Self:      *self,
		Topology:  makeTopology(*topo, n),
		Endpoint:  ep,
		Policy:    migration.Policy{Interval: *interval, Count: *migrants},
		Engine:    ga.NewGenerational(gaConfig(prob, *pop, engineRNG)),
		MigRNG:    migRNG,
		MaxGens:   *gens,
		Observers: []engine.Observer{obs},
	})
	// Close before reading stats so in-flight queues drain or dead-letter.
	if err := ep.Close(); err != nil {
		log.Printf("close: %v", err)
	}
	net := ep.Stats()

	out := result{
		Self:         *self,
		Best:         res.BestFitness,
		Solved:       res.Solved,
		Generations:  res.Generations,
		Evaluations:  res.Evaluations,
		Migrations:   res.Migrations,
		DeadLettered: net.Dropped,
		Restarts:     net.Reconnects,
		Net:          net,
		StopReason:   res.StopReason,
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
	log.Printf("done: best=%g solved=%v gens=%d sent=%d delivered=%d received=%d dropped=%d reconnects=%d",
		out.Best, out.Solved, out.Generations, net.Sent, net.Delivered, net.Received, net.Dropped, net.Reconnects)
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

// gaConfig builds this island's engine configuration with the same
// canonical operator choice per genome type as pgarun.
func gaConfig(prob core.Problem, pop int, r *rng.Source) ga.Config {
	var xover operators.Crossover
	var mut operators.Mutator
	switch prob.NewGenome(rng.New(0)).(type) {
	case *genome.RealVector:
		xover, mut = operators.SBX{}, operators.Polynomial{}
	case *genome.Permutation:
		xover, mut = operators.OX{}, operators.Inversion{}
	case *genome.IntVector:
		xover, mut = operators.Uniform{}, operators.UniformReset{}
	default:
		xover, mut = operators.Uniform{}, operators.BitFlip{}
	}
	return ga.Config{
		Problem: prob, PopSize: pop,
		Crossover: xover, Mutator: mut, RNG: r,
	}
}

func makeTopology(name string, n int) topology.Topology {
	switch name {
	case "biring":
		return topology.BiRing(n)
	case "star":
		return topology.Star(n)
	case "complete":
		return topology.Complete(n)
	default:
		return topology.Ring(n)
	}
}

// faultSpec assembles a transport.FaultSpec from the fault flags and
// reports whether any fault injection was requested.
func faultSpec(drop, jitter, dup, reorder float64, maxDelay int, partition, crashAt string) (transport.FaultSpec, bool) {
	spec := transport.FaultSpec{
		Link:        transport.LinkFaults{LossProb: drop, Jitter: jitter},
		MaxDelay:    maxDelay,
		DupProb:     dup,
		ReorderProb: reorder,
	}
	if partition != "" {
		p, err := parsePartition(partition)
		if err != nil {
			log.Fatal(err)
		}
		spec.Partitions = append(spec.Partitions, p)
	}
	if crashAt != "" {
		c, err := parseCrash(crashAt)
		if err != nil {
			log.Fatal(err)
		}
		spec.Crashes = append(spec.Crashes, c)
	}
	faulty := drop > 0 || jitter > 0 || dup > 0 || reorder > 0 ||
		len(spec.Partitions) > 0 || len(spec.Crashes) > 0
	return spec, faulty
}

// parsePartition parses "from:until:peer[;peer...]".
func parsePartition(s string) (transport.Partition, error) {
	var p transport.Partition
	parts := strings.SplitN(s, ":", 3)
	if len(parts) != 3 {
		return p, fmt.Errorf("bad -partition %q (want from:until:peer[;peer...])", s)
	}
	from, err1 := strconv.ParseUint(parts[0], 10, 64)
	until, err2 := strconv.ParseUint(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return p, fmt.Errorf("bad -partition bounds in %q", s)
	}
	p.From, p.Until = from, until
	for _, ps := range strings.Split(parts[2], ";") {
		id, err := strconv.Atoi(ps)
		if err != nil {
			return p, fmt.Errorf("bad -partition peer %q", ps)
		}
		p.Peers = append(p.Peers, id)
	}
	return p, nil
}

// writeFileAtomic publishes content at path via a same-directory temp
// file and rename, so a polling reader never observes a partial write.
func writeFileAtomic(path, content string) error {
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// awaitPeersFile polls until path exists, then parses it as one
// comma-separated (or newline-separated) id-ordered address list.
func awaitPeersFile(path string, wait time.Duration) ([]string, error) {
	deadline := time.Now().Add(wait)
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			var addrs []string
			for _, f := range strings.FieldsFunc(string(data), func(r rune) bool {
				return r == ',' || r == '\n' || r == '\r'
			}) {
				if f = strings.TrimSpace(f); f != "" {
					addrs = append(addrs, f)
				}
			}
			if len(addrs) > 0 {
				return addrs, nil
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("peers file %s did not appear within %v", path, wait)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// parseCrash parses "peer:at:until".
func parseCrash(s string) (transport.Crash, error) {
	var c transport.Crash
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return c, fmt.Errorf("bad -crashat %q (want peer:at:until)", s)
	}
	peer, err1 := strconv.Atoi(parts[0])
	at, err2 := strconv.ParseUint(parts[1], 10, 64)
	until, err3 := strconv.ParseUint(parts[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return c, fmt.Errorf("bad -crashat fields in %q", s)
	}
	c.Peer, c.At, c.Until = peer, at, until
	return c, nil
}
