package main

// Multi-process integration test: four pgaisland processes over
// loopback TCP form a ring, one island runs deterministic fault
// injection, and one island is SIGKILLed mid-run and restarted. The
// surviving islands must keep evolving through the outage (graceful
// degradation), reconnect to the restarted process (rejoin), and the
// final accounting must show the losses: non-zero dead-lettered
// batches and at least one reconnect.
//
// Island stderr logs are written to $PGA_ISLAND_LOG_DIR when set (the
// CI job uploads them as artifacts on failure), else to t.TempDir().

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// islandResult mirrors the result JSON contract printed by main.
type islandResult struct {
	Self         int     `json:"self"`
	Best         float64 `json:"best"`
	Solved       bool    `json:"solved"`
	Generations  int     `json:"generations"`
	Migrations   int64   `json:"migrations"`
	DeadLettered int64   `json:"dead_lettered"`
	Restarts     int64   `json:"restarts"`
	Net          struct {
		Sent, Delivered, Received, Dropped, Reconnects, PeerDowns int64
	} `json:"net"`
	StopReason string `json:"stop_reason"`
}

// buildIsland compiles the pgaisland binary into dir.
func buildIsland(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pgaisland")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build pgaisland: %v\n%s", err, out)
	}
	return bin
}

// collectAddrs polls the address files each island publishes after
// binding ":0" and returns the resolved id-ordered peer list. Unlike
// the old reserve-release-rebind helper there is no window where a
// port is free for another process to steal: every island holds its
// listener from bind to exit.
func collectAddrs(t *testing.T, exch string, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < n; i++ {
		path := filepath.Join(exch, fmt.Sprintf("addr.%d", i))
		for {
			data, err := os.ReadFile(path)
			if err == nil && len(bytes.TrimSpace(data)) > 0 {
				addrs[i] = string(bytes.TrimSpace(data))
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("island %d never published its address to %s", i, path)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return addrs
}

// publishPeers writes the resolved peer list where the islands are
// waiting for it, atomically (temp file + rename) so no island can
// read a partial list.
func publishPeers(t *testing.T, exch string, addrs []string) {
	t.Helper()
	tmp := filepath.Join(exch, ".peers.tmp")
	if err := os.WriteFile(tmp, []byte(strings.Join(addrs, ",")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(exch, "peers")); err != nil {
		t.Fatal(err)
	}
}

// logDir returns the island-log directory (CI artifact dir when set).
func logDir(t *testing.T) string {
	if d := os.Getenv("PGA_ISLAND_LOG_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err == nil {
			return d
		}
	}
	return t.TempDir()
}

// proc is one running pgaisland process.
type proc struct {
	cmd    *exec.Cmd
	stdout *bytes.Buffer
	log    *os.File
}

// startIsland launches island self. Peer wiring (-peers or the
// -listen/-addrfile/-peersfile handshake) comes in through extra.
func startIsland(t *testing.T, bin string, dir string, self int, extra ...string) *proc {
	t.Helper()
	logf, err := os.OpenFile(
		filepath.Join(dir, fmt.Sprintf("island-%d.log", self)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-self", fmt.Sprint(self),
		// 1024-bit OneMax with a small population cannot solve within
		// the generation budget, so every island runs its full span —
		// the kill, outage and rejoin all land inside live evolution.
		"-problem", "onemax", "-size", "1024", "-pop", "40",
		"-gens", "250", "-interval", "2", "-migrants", "2",
		"-seed", "7", "-pace", "5ms", "-quiet",
	}, extra...)
	is := &proc{cmd: exec.Command(bin, args...), stdout: &bytes.Buffer{}, log: logf}
	is.cmd.Stdout = is.stdout
	is.cmd.Stderr = logf
	if err := is.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return is
}

// wait joins the process and decodes its result JSON.
func (is *proc) wait(t *testing.T) islandResult {
	t.Helper()
	err := is.cmd.Wait()
	is.log.Close()
	if err != nil {
		t.Fatalf("island exited with %v; stdout: %s", err, is.stdout)
	}
	var res islandResult
	if jerr := json.NewDecoder(bytes.NewReader(is.stdout.Bytes())).Decode(&res); jerr != nil {
		t.Fatalf("island produced no result JSON (%v); stdout: %q", jerr, is.stdout)
	}
	return res
}

func TestMultiProcessIslandsSurviveKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildIsland(t, dir)
	logs := logDir(t)

	// Port allocation without the reserve-and-release race: every
	// island binds 127.0.0.1:0 itself, publishes the kernel-resolved
	// address to its addrfile, and waits for the collected peers file.
	exch := t.TempDir()
	handshake := func(self int) []string {
		return []string{
			"-listen", "127.0.0.1:0",
			"-addrfile", filepath.Join(exch, fmt.Sprintf("addr.%d", self)),
			"-peersfile", filepath.Join(exch, "peers"),
		}
	}

	// Island 0 injects deterministic faults on its outbound link: a 40%
	// drop rate plus a scripted partition window, so dead-lettering is
	// guaranteed even if the wire itself behaves.
	islands := make([]*proc, 4)
	islands[0] = startIsland(t, bin, logs, 0, append(handshake(0),
		"-drop", "0.4", "-partition", "10:30:1", "-faultseed", "99")...)
	for i := 1; i < 4; i++ {
		islands[i] = startIsland(t, bin, logs, i, handshake(i)...)
	}
	addrs := collectAddrs(t, exch, 4)
	publishPeers(t, exch, addrs)
	peers := strings.Join(addrs, ",")

	// Let the ring form and exchange for a while, then SIGKILL island 3
	// mid-run — no cleanup, no goodbye, exactly like a crashed node.
	time.Sleep(350 * time.Millisecond)
	victim := islands[3]
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()
	victim.log.Close()

	// The survivors run degraded. Then the island rejoins on the same
	// resolved address (a fresh process, as a cluster manager would
	// restart it) — the port was ours until the kill, so rebinding the
	// exact address races nobody.
	time.Sleep(400 * time.Millisecond)
	islands[3] = startIsland(t, bin, logs, 3, "-peers", peers)

	results := make([]islandResult, 4)
	for i, is := range islands {
		results[i] = is.wait(t)
	}

	var dropped, reconnects, migrations int64
	for i, r := range results {
		t.Logf("island %d: best=%g gens=%d migrations=%d dead_lettered=%d net=%+v stop=%q",
			i, r.Best, r.Generations, r.Migrations, r.DeadLettered, r.Net, r.StopReason)
		if r.Self != i {
			t.Errorf("island %d reported self=%d", i, r.Self)
		}
		if r.Best <= 0 {
			t.Errorf("island %d produced no valid best (%g)", i, r.Best)
		}
		if r.Generations <= 0 {
			t.Errorf("island %d ran no generations", i)
		}
		dropped += r.DeadLettered
		reconnects += r.Net.Reconnects
		migrations += r.Migrations
	}
	if migrations == 0 {
		t.Error("no migration crossed the wire in the whole run")
	}
	// The injected faults and the killed island must both show up in
	// the dead-letter accounting.
	if results[0].DeadLettered == 0 {
		t.Error("island 0's injected faults dead-lettered nothing")
	}
	if dropped == 0 {
		t.Error("kill+faults run recorded zero dead-lettered batches")
	}
	// Island 2 dials island 3 (ring): the restart must have produced a
	// reconnect somewhere in the ring.
	if reconnects == 0 {
		t.Error("restarted island produced no reconnect")
	}
}
