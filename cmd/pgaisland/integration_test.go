package main

// Multi-process integration test: four pgaisland processes over
// loopback TCP form a ring, one island runs deterministic fault
// injection, and one island is SIGKILLed mid-run and restarted. The
// surviving islands must keep evolving through the outage (graceful
// degradation), reconnect to the restarted process (rejoin), and the
// final accounting must show the losses: non-zero dead-lettered
// batches and at least one reconnect.
//
// Island stderr logs are written to $PGA_ISLAND_LOG_DIR when set (the
// CI job uploads them as artifacts on failure), else to t.TempDir().

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// islandResult mirrors the result JSON contract printed by main.
type islandResult struct {
	Self         int     `json:"self"`
	Best         float64 `json:"best"`
	Solved       bool    `json:"solved"`
	Generations  int     `json:"generations"`
	Migrations   int64   `json:"migrations"`
	DeadLettered int64   `json:"dead_lettered"`
	Restarts     int64   `json:"restarts"`
	Net          struct {
		Sent, Delivered, Received, Dropped, Reconnects, PeerDowns int64
	} `json:"net"`
	StopReason string `json:"stop_reason"`
}

// buildIsland compiles the pgaisland binary into dir.
func buildIsland(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pgaisland")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build pgaisland: %v\n%s", err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports and releases them.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// logDir returns the island-log directory (CI artifact dir when set).
func logDir(t *testing.T) string {
	if d := os.Getenv("PGA_ISLAND_LOG_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err == nil {
			return d
		}
	}
	return t.TempDir()
}

// proc is one running pgaisland process.
type proc struct {
	cmd    *exec.Cmd
	stdout *bytes.Buffer
	log    *os.File
}

// startIsland launches island self with the shared peer list.
func startIsland(t *testing.T, bin string, dir string, self int, peers string, extra ...string) *proc {
	t.Helper()
	logf, err := os.OpenFile(
		filepath.Join(dir, fmt.Sprintf("island-%d.log", self)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-self", fmt.Sprint(self),
		"-peers", peers,
		// 1024-bit OneMax with a small population cannot solve within
		// the generation budget, so every island runs its full span —
		// the kill, outage and rejoin all land inside live evolution.
		"-problem", "onemax", "-size", "1024", "-pop", "40",
		"-gens", "250", "-interval", "2", "-migrants", "2",
		"-seed", "7", "-pace", "5ms", "-quiet",
	}, extra...)
	is := &proc{cmd: exec.Command(bin, args...), stdout: &bytes.Buffer{}, log: logf}
	is.cmd.Stdout = is.stdout
	is.cmd.Stderr = logf
	if err := is.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return is
}

// wait joins the process and decodes its result JSON.
func (is *proc) wait(t *testing.T) islandResult {
	t.Helper()
	err := is.cmd.Wait()
	is.log.Close()
	if err != nil {
		t.Fatalf("island exited with %v; stdout: %s", err, is.stdout)
	}
	var res islandResult
	if jerr := json.NewDecoder(bytes.NewReader(is.stdout.Bytes())).Decode(&res); jerr != nil {
		t.Fatalf("island produced no result JSON (%v); stdout: %q", jerr, is.stdout)
	}
	return res
}

func TestMultiProcessIslandsSurviveKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process integration test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildIsland(t, dir)
	logs := logDir(t)
	addrs := freePorts(t, 4)
	peers := strings.Join(addrs, ",")

	// Island 0 injects deterministic faults on its outbound link: a 40%
	// drop rate plus a scripted partition window, so dead-lettering is
	// guaranteed even if the wire itself behaves.
	islands := make([]*proc, 4)
	islands[0] = startIsland(t, bin, logs, 0, peers,
		"-drop", "0.4", "-partition", "10:30:1", "-faultseed", "99")
	for i := 1; i < 4; i++ {
		islands[i] = startIsland(t, bin, logs, i, peers)
	}

	// Let the ring form and exchange for a while, then SIGKILL island 3
	// mid-run — no cleanup, no goodbye, exactly like a crashed node.
	time.Sleep(350 * time.Millisecond)
	victim := islands[3]
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = victim.cmd.Wait()
	victim.log.Close()

	// The survivors run degraded. Then the island rejoins on the same
	// address (a fresh process, as a cluster manager would restart it).
	time.Sleep(400 * time.Millisecond)
	islands[3] = startIsland(t, bin, logs, 3, peers)

	results := make([]islandResult, 4)
	for i, is := range islands {
		results[i] = is.wait(t)
	}

	var dropped, reconnects, migrations int64
	for i, r := range results {
		t.Logf("island %d: best=%g gens=%d migrations=%d dead_lettered=%d net=%+v stop=%q",
			i, r.Best, r.Generations, r.Migrations, r.DeadLettered, r.Net, r.StopReason)
		if r.Self != i {
			t.Errorf("island %d reported self=%d", i, r.Self)
		}
		if r.Best <= 0 {
			t.Errorf("island %d produced no valid best (%g)", i, r.Best)
		}
		if r.Generations <= 0 {
			t.Errorf("island %d ran no generations", i)
		}
		dropped += r.DeadLettered
		reconnects += r.Net.Reconnects
		migrations += r.Migrations
	}
	if migrations == 0 {
		t.Error("no migration crossed the wire in the whole run")
	}
	// The injected faults and the killed island must both show up in
	// the dead-letter accounting.
	if results[0].DeadLettered == 0 {
		t.Error("island 0's injected faults dead-lettered nothing")
	}
	if dropped == 0 {
		t.Error("kill+faults run recorded zero dead-lettered batches")
	}
	// Island 2 dials island 3 (ring): the restart must have produced a
	// reconnect somewhere in the ring.
	if reconnects == 0 {
		t.Error("restarted island produced no reconnect")
	}
}
