// Command pgarun runs one parallel-GA configuration on one benchmark
// problem and prints progress and the final result — the library's
// command-line front door.
//
// Usage examples:
//
//	pgarun -problem onemax -size 128 -model islands -demes 8
//	pgarun -problem rastrigin -size 10 -model sequential -gens 500
//	pgarun -problem trap -size 48 -model cellular -rows 10 -cols 10
//	pgarun -problem onemax -size 64 -model masterslave -workers 8
//	pgarun -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pga/internal/cellular"
	"pga/internal/core"
	"pga/internal/ga"
	"pga/internal/genome"
	"pga/internal/island"
	"pga/internal/masterslave"
	"pga/internal/migration"
	"pga/internal/operators"
	"pga/internal/p2p"
	"pga/internal/problems"
	"pga/internal/rng"
	"pga/internal/topology"
)

func main() {
	problem := flag.String("problem", "onemax", "problem key (see -list)")
	size := flag.Int("size", 64, "problem size (bits / dimensions / items)")
	model := flag.String("model", "islands", "sequential | steadystate | islands | cellular | masterslave | p2p")
	demes := flag.Int("demes", 8, "islands: deme count")
	pop := flag.Int("pop", 50, "population size (per deme for islands)")
	gens := flag.Int("gens", 300, "maximum generations")
	interval := flag.Int("interval", 10, "islands: migration interval")
	migrants := flag.Int("migrants", 2, "islands: migrants per exchange")
	topo := flag.String("topology", "ring", "islands: ring | biring | star | complete | hypercube | isolated")
	async := flag.Bool("async", false, "islands: asynchronous migration (goroutine mode)")
	rows := flag.Int("rows", 10, "cellular: grid rows")
	cols := flag.Int("cols", 10, "cellular: grid cols")
	workers := flag.Int("workers", 4, "masterslave: worker count")
	peers := flag.Int("peers", 16, "p2p: peer count")
	churn := flag.Float64("churn", 0, "p2p: per-generation leave probability")
	seed := flag.Uint64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list problem keys and exit")
	quiet := flag.Bool("quiet", false, "suppress per-generation progress")
	flag.Parse()

	if *list {
		for _, k := range problems.Keys() {
			spec, _ := problems.Lookup(k)
			fmt.Printf("%-12s class=%s\n", k, spec.Class)
		}
		return
	}

	spec, err := problems.Lookup(*problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgarun:", err)
		os.Exit(2)
	}
	prob := spec.Make(*size, *seed)

	stop := core.StopCondition(core.MaxGenerations(*gens))
	if ta, ok := prob.(core.TargetAware); ok {
		stop = core.AnyOf{
			core.MaxGenerations(*gens),
			core.TargetFitness{Target: ta.Optimum(), Dir: prob.Direction()},
		}
	}

	xover, mut := operatorsFor(prob)
	gaCfg := func(r *rng.Source) ga.Config {
		return ga.Config{
			Problem: prob, PopSize: *pop,
			Crossover: xover, Mutator: mut, RNG: r,
		}
	}
	onStep := func(s core.Status) {
		if !*quiet && s.Generation%25 == 0 {
			fmt.Printf("gen %4d  best %.6g  evals %d\n", s.Generation, s.BestFitness, s.Evaluations)
		}
	}

	switch *model {
	case "sequential", "steadystate":
		var e ga.Engine
		if *model == "sequential" {
			e = ga.NewGenerational(gaCfg(rng.New(*seed)))
		} else {
			e = ga.NewSteadyState(gaCfg(rng.New(*seed)), true)
		}
		res := ga.Run(e, ga.RunOptions{Stop: stop, OnStep: onStep})
		fmt.Println(res)
	case "masterslave":
		farm := masterslave.NewFarm(*seed, masterslave.Uniform(*workers))
		cfg := gaCfg(rng.New(*seed))
		cfg.Evaluator = farm
		res := ga.Run(ga.NewGenerational(cfg), ga.RunOptions{Stop: stop, OnStep: onStep})
		fmt.Println(res)
		st := farm.Stats()
		fmt.Printf("farm: %d workers, %d evaluations, %d redispatched\n", *workers, st.Evaluations, st.Redispatched)
	case "cellular":
		cfg := cellular.Config{
			Problem: prob, Rows: *rows, Cols: *cols,
			Crossover: xover, Mutator: mut,
			Update: cellular.NewRandomSweep, RNG: rng.New(*seed),
		}
		res := ga.Run(cellular.New(cfg), ga.RunOptions{Stop: stop, OnStep: onStep})
		fmt.Println(res)
	case "islands":
		m := island.New(island.Config{
			Topology: makeTopology(*topo, *demes),
			Policy:   migration.Policy{Interval: *interval, Count: *migrants, Sync: !*async},
			NewEngine: func(d int, r *rng.Source) ga.Engine {
				return ga.NewGenerational(gaCfg(r))
			},
			Seed: *seed,
		})
		var res *island.Result
		if *async {
			res = m.RunParallel(*gens, false)
		} else {
			res = m.RunSequential(stop, false)
		}
		fmt.Printf("%s: best=%g gens=%d evals=%d solved=%v migrations=%d stop=%q (%v)\n",
			prob.Name(), res.BestFitness, res.Generations, res.Evaluations,
			res.Solved, res.Migrations, res.StopReason, res.Elapsed)
		fmt.Printf("per-deme best: %v\n", res.PerDemeBest)
	case "p2p":
		n := p2p.New(p2p.Config{
			Problem: prob,
			Peers:   *peers,
			NewEngine: func(peer int, r *rng.Source) ga.Engine {
				return ga.NewGenerational(gaCfg(r))
			},
			ChurnRate: *churn,
			Seed:      *seed,
		})
		res := n.Run(*gens)
		fmt.Printf("%s: best=%g gens=%d solved=%v evals=%d peers-alive=%d departures=%d joins=%d messages=%d stop=%q (%v)\n",
			prob.Name(), res.BestFitness, res.Generations, res.Solved, res.Evaluations,
			res.AliveAtEnd, res.Departures, res.Joins, res.Messages, res.StopReason, res.Elapsed)
	default:
		fmt.Fprintf(os.Stderr, "pgarun: unknown model %q\n", *model)
		os.Exit(2)
	}
}

// operatorsFor picks canonical operators for the problem's genome type.
func operatorsFor(p core.Problem) (operators.Crossover, operators.Mutator) {
	g := p.NewGenome(rng.New(0))
	switch g.(type) {
	case *genome.RealVector:
		return operators.SBX{}, operators.Polynomial{}
	case *genome.Permutation:
		return operators.OX{}, operators.Inversion{}
	case *genome.IntVector:
		return operators.Uniform{}, operators.UniformReset{}
	default:
		return operators.Uniform{}, operators.BitFlip{}
	}
}

func makeTopology(name string, n int) topology.Topology {
	switch name {
	case "biring":
		return topology.BiRing(n)
	case "star":
		return topology.Star(n)
	case "complete":
		return topology.Complete(n)
	case "hypercube":
		d := 0
		for 1<<uint(d) < n {
			d++
		}
		return topology.Hypercube(d)
	case "isolated":
		return topology.Isolated(n)
	default:
		return topology.Ring(n)
	}
}
