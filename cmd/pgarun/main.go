// Command pgarun runs one parallel-GA configuration on one benchmark
// problem and prints progress and the final result — the library's
// command-line front door.
//
// The flags are a thin builder over the declarative run-spec layer
// (internal/spec): every flag combination assembles a RunSpec and runs
// it through the same Build path a JSON config file uses. -config runs
// a spec document instead — a single run, or a sweep expanding a base
// spec over parameter axes into a deterministic run matrix.
//
// Usage examples:
//
//	pgarun -problem onemax -size 128 -model islands -demes 8
//	pgarun -problem rastrigin -size 10 -model sequential -gens 500
//	pgarun -problem trap -size 48 -model cellular -rows 10 -cols 10
//	pgarun -problem onemax -size 64 -model masterslave -workers 8
//	pgarun -problem sphere -size 8 -model hga -cost 3000
//	pgarun -problem zdt1 -size 10 -model sim -scenario 4
//	pgarun -problem onemax -size 64 -model islands -async -resilience default
//	pgarun -config examples/sweeps/onemax-demes.json -out results.json
//	pgarun -config examples/sweeps/onemax-demes.json -validate
//	pgarun -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pga/internal/core"
	"pga/internal/problems"
	"pga/internal/spec"
)

func main() {
	problem := flag.String("problem", "onemax", "problem key (see -list; zdt1/schaffer for -model sim)")
	size := flag.Int("size", 64, "problem size (bits / dimensions / items)")
	model := flag.String("model", "islands", "sequential | steadystate | parallel | islands | cellular | masterslave | p2p | hga | sim")
	demes := flag.Int("demes", 8, "islands: deme count")
	pop := flag.Int("pop", 50, "population size (per deme for islands)")
	gens := flag.Int("gens", 300, "maximum generations")
	interval := flag.Int("interval", 10, "islands: migration interval")
	migrants := flag.Int("migrants", 2, "islands: migrants per exchange")
	topo := flag.String("topology", "ring", "islands: ring | biring | star | complete | hypercube | isolated | random")
	async := flag.Bool("async", false, "islands: asynchronous migration (goroutine mode)")
	resilience := flag.String("resilience", "", "islands: supervision preset: none | default | eager (implies goroutine mode)")
	rows := flag.Int("rows", 10, "cellular: grid rows")
	cols := flag.Int("cols", 10, "cellular: grid cols")
	workers := flag.Int("workers", 4, "masterslave/parallel: worker count")
	peers := flag.Int("peers", 16, "p2p: peer count")
	churn := flag.Float64("churn", 0, "p2p: per-generation leave probability")
	cost := flag.Float64("cost", 2000, "hga: precise-evaluation cost budget")
	scenario := flag.Int("scenario", 1, "sim: scenario number 1-7")
	seed := flag.Uint64("seed", 1, "random seed")
	configPath := flag.String("config", "", "run a spec or sweep JSON document instead of flags")
	validate := flag.Bool("validate", false, "validate the spec/config and exit without running")
	out := flag.String("out", "", "config runs: write the JSON results to this file (default stdout)")
	list := flag.Bool("list", false, "list problem keys and exit")
	quiet := flag.Bool("quiet", false, "suppress per-generation progress")
	flag.Parse()

	if *list {
		for _, k := range problems.Keys() {
			ps, _ := problems.Lookup(k)
			fmt.Printf("%-12s class=%s\n", k, ps.Class)
		}
		return
	}

	if *configPath != "" {
		runConfig(*configPath, *out, *validate, *quiet)
		return
	}

	s, err := specFromFlags(flagSpec{
		problem: *problem, size: *size, model: *model,
		demes: *demes, pop: *pop, gens: *gens,
		interval: *interval, migrants: *migrants, topo: *topo,
		async: *async, resilience: *resilience,
		rows: *rows, cols: *cols, workers: *workers,
		peers: *peers, churn: *churn,
		cost: *cost, scenario: *scenario, seed: *seed,
	})
	if err != nil {
		fail(err)
	}
	if *validate {
		doc, jerr := s.JSON()
		if jerr != nil {
			fail(jerr)
		}
		fmt.Printf("%s\n", doc)
		return
	}
	runSingle(s, *quiet)
}

// flagSpec carries the parsed flag values into the spec builder.
type flagSpec struct {
	problem          string
	size             int
	model            string
	demes, pop, gens int
	interval         int
	migrants         int
	topo             string
	async            bool
	resilience       string
	rows, cols       int
	workers          int
	peers            int
	churn            float64
	cost             float64
	scenario         int
	seed             uint64
}

// specFromFlags assembles the RunSpec a flag invocation means. It adds
// nothing the config path cannot express: the flags are a shorthand for
// a subset of the spec schema.
func specFromFlags(f flagSpec) (*spec.RunSpec, error) {
	model := f.model
	if model == "sequential" { // historical alias
		model = spec.ModelGenerational
	}
	s := &spec.RunSpec{
		Model:   model,
		Problem: spec.ProblemSpec{Name: f.problem, Size: f.size},
		Seed:    f.seed,
	}

	switch model {
	case spec.ModelHGA:
		s.Budget.Cost = f.cost
	default:
		s.Budget.Generations = f.gens
	}

	switch model {
	case spec.ModelCellular:
		s.Engine.Grid = &spec.GridSpec{Rows: f.rows, Cols: f.cols, Update: "nrs"}
	case spec.ModelSIM:
		s.SIM = &spec.SIMSpec{Scenario: f.scenario}
	default:
		s.Engine.Pop = f.pop
	}

	switch model {
	case spec.ModelParallel:
		s.Engine.Workers = f.workers
	case spec.ModelMasterSlave:
		s.Farm = &spec.FarmSpec{Workers: f.workers}
	case spec.ModelP2P:
		s.P2P = &spec.P2PSpec{Peers: f.peers, Churn: f.churn}
	case spec.ModelIslands:
		is := &spec.IslandSpec{
			Demes:      f.demes,
			Topology:   spec.TopologySpec{Kind: f.topo},
			Migration:  spec.MigrationSpec{Interval: f.interval, Count: f.migrants, Async: f.async},
			Resilience: f.resilience,
		}
		supervised := f.resilience != "" && f.resilience != "none"
		if f.async || supervised {
			is.Mode = "parallel"
		}
		s.Islands = is
	}

	// The flag path has always stopped at the known optimum where one
	// exists; only the budget-restricted models skip the condition.
	if stopAtOptimum(s) {
		s.Budget.TargetOptimum = true
	}

	if verr := s.Validate(); verr != nil {
		return nil, verr
	}
	return s, nil
}

// stopAtOptimum reports whether the model accepts a target-optimum stop
// and the problem has a known optimum.
func stopAtOptimum(s *spec.RunSpec) bool {
	switch s.Model {
	case spec.ModelHGA, spec.ModelP2P, spec.ModelSIM:
		return false
	case spec.ModelIslands:
		if s.Islands != nil && s.Islands.Mode == "parallel" {
			return false
		}
	}
	ps, err := problems.Lookup(s.Problem.Name)
	if err != nil {
		return false // validation will report the unknown problem
	}
	_, ok := ps.Make(s.Problem.Size, s.Seed).(core.TargetAware)
	return ok
}

// runSingle builds and runs one spec, printing progress and a
// human-readable summary.
func runSingle(s *spec.RunSpec, quiet bool) {
	b, err := spec.Build(*s)
	if err != nil {
		fail(err)
	}
	onStep := func(st core.Status) {
		if !quiet && st.Generation%25 == 0 {
			fmt.Printf("gen %4d  best %.6g  evals %d\n", st.Generation, st.BestFitness, st.Evaluations)
		}
	}
	rep := b.Run(spec.RunOpts{OnStep: onStep})
	printReport(rep, b)
}

// printReport renders the model-appropriate summary lines.
func printReport(rep *spec.Report, b *spec.Built) {
	fmt.Printf("%s: best=%g gens=%d evals=%d solved=%v stop=%q\n",
		rep.Problem, rep.Best, rep.Generations, rep.Evaluations, rep.Solved, rep.StopReason)
	switch rep.Model {
	case spec.ModelMasterSlave:
		st := b.Farm.Stats()
		fmt.Printf("farm: %d workers, %d evaluations, %d redispatched\n",
			b.Farm.Workers(), st.Evaluations, st.Redispatched)
	case spec.ModelIslands:
		fmt.Printf("islands: migrations=%d", rep.Migrations)
		if rep.Restarts > 0 || len(rep.DeadDemes) > 0 {
			fmt.Printf(" restarts=%d dead=%v", rep.Restarts, rep.DeadDemes)
		}
		fmt.Println()
	case spec.ModelP2P:
		fmt.Printf("p2p: alive=%d departures=%d joins=%d\n",
			rep.AliveAtEnd, rep.Departures, rep.Joins)
	case spec.ModelHGA:
		fmt.Printf("hga: cost=%g cost-at-solve=%g\n", rep.Cost, rep.CostAtSolve)
	case spec.ModelSIM:
		fmt.Printf("sim: hypervolume=%.6g pareto=%d islands=%d\n",
			rep.Hypervolume, rep.ParetoSize, rep.Islands)
	}
}

// runConfig runs (or just validates) a spec/sweep document.
func runConfig(path, out string, validateOnly, quiet bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	f, perr := spec.ParseFile(data)
	if perr != nil {
		fail(perr)
	}

	if f.Single != nil {
		if validateOnly {
			fmt.Printf("%s: valid single-run spec (model %s, problem %s)\n", path, f.Single.Model, f.Single.Problem.Name)
			return
		}
		b, berr := spec.Build(*f.Single)
		if berr != nil {
			fail(berr)
		}
		rep := b.Run(spec.RunOpts{})
		writeResults(out, []*spec.Report{rep})
		return
	}

	cells, cerr := f.Sweep.Cells()
	if cerr != nil {
		fail(cerr)
	}
	if validateOnly {
		fmt.Printf("%s: valid sweep (%d cells × %d axes)\n", path, len(cells), len(f.Sweep.Axes))
		return
	}
	done := 0
	reports, rerr := f.Sweep.Run(spec.RunOpts{OnStep: func(core.Status) {}})
	if rerr != nil {
		fail(rerr)
	}
	if !quiet {
		done = len(reports)
		fmt.Fprintf(os.Stderr, "pgarun: %d runs complete\n", done)
	}
	writeResults(out, reports)
}

// writeResults marshals the run reports to -out (or stdout).
func writeResults(out string, reports []*spec.Report) {
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pgarun:", err)
	os.Exit(2)
}
