package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pga/internal/analysis"
)

// TestDrawPairRegistryMatchesAnalysis is the layering sync gate: the
// runtime pair registries (core/operators/island DrawPairs) and the
// analysis-side DefaultDrawParityConfig must list exactly the same
// pairs, so the linter proves parity for precisely the substitutions the
// engines perform — without internal/analysis importing product code.
func TestDrawPairRegistryMatchesAnalysis(t *testing.T) {
	runtime := map[string]bool{}
	for _, p := range allDrawPairs() {
		runtime[p.A+" / "+p.B] = true
	}
	static := map[string]bool{}
	for _, p := range analysis.DefaultDrawParityConfig().Pairs {
		static[p.A+" / "+p.B] = true
	}
	for k := range runtime {
		if !static[k] {
			t.Errorf("pair %s declared at runtime but missing from DefaultDrawParityConfig", k)
		}
	}
	for k := range static {
		if !runtime[k] {
			t.Errorf("pair %s in DefaultDrawParityConfig but not declared by any DrawPairs()", k)
		}
	}
}

// TestTraceCoverCleanOnRepo is the acceptance gate: every declared
// equivalence pair has golden coverage — a scenario exercising its
// operator or a dedicated equivalence test.
func TestTraceCoverCleanOnRepo(t *testing.T) {
	rep := buildTraceCover()
	if rep.Failed() {
		t.Errorf("uncovered equivalence pairs:\n  %s", strings.Join(rep.UncoveredPairs, "\n  "))
	}
	if rep.ScenarioN == 0 || rep.OperatorN == 0 || len(rep.Pairs) == 0 {
		t.Fatalf("empty audit inputs: %d scenarios, %d operators, %d pairs",
			rep.ScenarioN, rep.OperatorN, len(rep.Pairs))
	}
	// The markdown artifact must enumerate every pair.
	md := rep.Markdown()
	for _, pc := range rep.Pairs {
		if !strings.Contains(md, pc.Pair.A) {
			t.Errorf("markdown report missing pair member %s", pc.Pair.A)
		}
	}
}

// TestDrawPairTestsExist guards the Test fields: a pair claiming a
// dedicated equivalence test must name a test function that actually
// exists in the member's package, so coverage claims cannot rot through
// renames.
func TestDrawPairTestsExist(t *testing.T) {
	for _, p := range allDrawPairs() {
		if p.Test == "" {
			continue
		}
		// "pga/internal/operators.SUS" → package path up to the first dot
		// after the last slash.
		slash := strings.LastIndex(p.A, "/")
		dot := strings.Index(p.A[slash:], ".")
		if slash < 0 || dot < 0 {
			t.Errorf("pair %s / %s: cannot derive package from member name", p.A, p.B)
			continue
		}
		dir := filepath.Join("..", "..", strings.TrimPrefix(p.A[:slash+dot], "pga/"))
		files, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
		if err != nil || len(files) == 0 {
			t.Errorf("pair %s / %s: no test files under %s for claimed test %s", p.A, p.B, dir, p.Test)
			continue
		}
		found := false
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(string(data), "func "+p.Test+"(") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pair %s / %s claims test %s, but no such test function exists in %s",
				p.A, p.B, p.Test, dir)
		}
	}
}
