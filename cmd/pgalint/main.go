// Command pgalint runs the framework's static-analysis suite
// (internal/analysis) over the module: determinism and concurrency
// contracts the compiler cannot check.
//
// Usage:
//
//	pgalint [-json] [-rules] [packages]
//
// With no arguments it lints every package of the enclosing module
// (equivalent to ./...). Package patterns are module-relative:
// "./...", "./internal/...", "./internal/island". Exit status is 0 when
// no findings survive suppression, 1 when there are findings, and 2 on a
// load failure.
//
// Suppress a finding with a justification comment on or directly above
// the offending line:
//
//	//pgalint:ignore rule why this specific pattern is provably safe
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pga/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	rules := flag.Bool("rules", false, "list the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pgalint [-json] [-rules] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	registry := analysis.Registry()
	if *rules {
		for _, a := range registry {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs, err := filterPackages(mod, flag.Args())
	if err != nil {
		fatal(err)
	}
	diags := analysis.RunAnalyzers(mod.Root, pkgs, registry)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "pgalint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// filterPackages selects the module packages matching the command-line
// patterns. Patterns are module-relative paths, with "..." matching any
// suffix; no patterns (or "./...") selects everything. A pattern that
// matches nothing is an error — a typo'd path in CI must not silently
// gate zero packages.
func filterPackages(mod *analysis.Module, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, raw := range patterns {
		pat := strings.TrimPrefix(raw, "./")
		pat = strings.TrimSuffix(pat, "/")
		matched := false
		for _, pkg := range mod.Pkgs {
			if !matchPattern(mod.Path, pat, pkg.Path) {
				continue
			}
			matched = true
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", raw)
		}
	}
	return out, nil
}

// matchPattern matches a module-relative pattern against an import path.
func matchPattern(modPath, pat, pkgPath string) bool {
	if pat == "..." || pat == "." {
		return true
	}
	full := modPath
	if base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/"); base != "" {
		full = modPath + "/" + base
	}
	if strings.HasSuffix(pat, "...") {
		return pkgPath == full || strings.HasPrefix(pkgPath, full+"/")
	}
	return pkgPath == full
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pgalint: %v\n", err)
	os.Exit(2)
}
