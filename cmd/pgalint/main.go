// Command pgalint runs the framework's static-analysis suite
// (internal/analysis) over the module: determinism and concurrency
// contracts the compiler cannot check.
//
// Usage:
//
//	pgalint [-json] [-sarif] [-graph] [-rules] [-tracecover] [-time]
//	        [-deadline d] [-rulebudget d] [-timemd file] [-baseline file]
//	        [packages]
//
// With no arguments it lints every package of the enclosing module
// (equivalent to ./...). Package patterns are module-relative:
// "./...", "./internal/...", "./internal/island". Exit status is 0 when
// no findings survive suppression, 1 when there are findings (or a
// budget is exceeded, or the suppression baseline is breached), and 2
// on a load failure.
//
// -graph skips linting entirely and dumps the interprocedural call
// graph (functions, closures, call/spawn/ref edges) as JSON — the same
// graph the summary engine propagates effect facts over.
//
// -tracecover skips linting and audits the golden-trace coverage of the
// declared RNG-draw equivalence pairs: every pair (core.DrawPairs,
// operators.DrawPairs, island.DrawPairs) must be backed by a pinned
// golden scenario exercising its operator or by a dedicated equivalence
// test. The report is markdown (JSON with -json); uncovered pairs exit 1.
//
// -sarif emits findings as a SARIF 2.1.0 log for GitHub code scanning;
// -time reports per-rule wall time on stderr; -deadline fails the run
// when analysis (load + lint) exceeds the given budget, keeping the CI
// gate honest about linter cost. -rulebudget fails the run when any
// single rule exceeds the given budget — the deadline bounds the whole
// suite, the rule budget catches one rule quietly going quadratic.
// -timemd appends the per-rule timing table as GitHub-flavored markdown
// to the named file (pass "$GITHUB_STEP_SUMMARY" in CI for a job
// summary).
//
// -baseline is the suppression ratchet: the named file holds the
// checked-in count of //pgalint:ignore directives ("#" comments and
// blank lines skipped). If the module now carries more directives than
// the baseline the run fails — new suppressions need a reviewed
// baseline bump, so the ignore count can only drift down silently,
// never up. When the count drops, pgalint prints a reminder to ratchet
// the baseline down.
//
// Suppress a finding with a justification comment on or directly above
// the offending line:
//
//	//pgalint:ignore rule why this specific pattern is provably safe
//
// The justification is mandatory: a bare directive is itself reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pga/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	graphOut := flag.Bool("graph", false, "dump the interprocedural call graph as JSON and exit")
	rules := flag.Bool("rules", false, "list the registered rules and exit")
	timing := flag.Bool("time", false, "report per-rule wall time on stderr")
	deadline := flag.Duration("deadline", 0, "fail if load+lint exceeds this duration (0 = no budget)")
	ruleBudget := flag.Duration("rulebudget", 0, "fail if any single rule exceeds this duration (0 = no budget)")
	timeMD := flag.String("timemd", "", "append the per-rule timing table as markdown to this file")
	baseline := flag.String("baseline", "", "suppression-ratchet file: fail if //pgalint:ignore count exceeds it")
	traceCover := flag.Bool("tracecover", false, "audit golden-trace coverage of the equivalence pairs and exit (markdown, or JSON with -json)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pgalint [-json] [-sarif] [-graph] [-rules] [-tracecover] [-time] [-deadline d] [-rulebudget d] [-timemd file] [-baseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	registry := analysis.Registry()
	if *rules {
		for _, a := range registry {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *traceCover {
		rep := buildTraceCover()
		if *jsonOut {
			data, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n", data)
		} else {
			fmt.Print(rep.Markdown())
		}
		if rep.Failed() {
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs, err := filterPackages(mod, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *graphOut {
		data, err := analysis.BuildGraph(pkgs).JSON(mod.Root, mod.Fset)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
		return
	}

	diags, timings := analysis.RunAnalyzersTimed(mod.Root, pkgs, registry,
		func() int64 { return time.Now().UnixNano() })

	if *timing {
		for _, rt := range timings {
			fmt.Fprintf(os.Stderr, "pgalint: %-14s %8.1fms\n",
				rt.Rule, float64(rt.Nanos)/1e6)
		}
		fmt.Fprintf(os.Stderr, "pgalint: %-14s %8.1fms (load + lint)\n",
			"total", float64(time.Since(start))/1e6)
	}
	if *timeMD != "" {
		if err := writeTimingMarkdown(*timeMD, timings, time.Since(start), *ruleBudget); err != nil {
			fatal(err)
		}
	}

	switch {
	case *sarifOut:
		data, err := analysis.SARIF(diags, registry)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}

	failed := false
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "pgalint: %d finding(s)\n", len(diags))
		}
		failed = true
	}
	if *deadline > 0 {
		if elapsed := time.Since(start); elapsed > *deadline {
			fmt.Fprintf(os.Stderr, "pgalint: analysis took %v, over the %v deadline\n",
				elapsed.Round(time.Millisecond), *deadline)
			failed = true
		}
	}
	if *ruleBudget > 0 {
		for _, rt := range timings {
			if d := time.Duration(rt.Nanos); d > *ruleBudget {
				fmt.Fprintf(os.Stderr, "pgalint: rule %s took %v, over the %v per-rule budget\n",
					rt.Rule, d.Round(time.Millisecond), *ruleBudget)
				failed = true
			}
		}
	}
	if *baseline != "" {
		if err := checkBaseline(*baseline, analysis.CountIgnoreDirectives(pkgs)); err != nil {
			fmt.Fprintf(os.Stderr, "pgalint: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeTimingMarkdown appends the per-rule timing table to path as a
// GitHub-flavored markdown table (the CI job points this at
// $GITHUB_STEP_SUMMARY). Rows over the per-rule budget are flagged.
func writeTimingMarkdown(path string, timings []analysis.RuleTiming, total, budget time.Duration) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	b.WriteString("### pgalint timing\n\n| rule | wall time | budget |\n|---|---:|---|\n")
	for _, rt := range timings {
		status := ""
		if budget > 0 {
			status = "ok"
			if time.Duration(rt.Nanos) > budget {
				status = fmt.Sprintf("**over %v**", budget)
			}
		}
		fmt.Fprintf(&b, "| %s | %.1fms | %s |\n", rt.Rule, float64(rt.Nanos)/1e6, status)
	}
	fmt.Fprintf(&b, "| **total (load + lint)** | %.1fms | |\n\n", float64(total)/1e6)
	_, err = f.WriteString(b.String())
	return err
}

// checkBaseline enforces the suppression ratchet: the count of
// //pgalint:ignore directives in the linted packages must not exceed
// the integer recorded in the baseline file. Growth fails the run;
// shrinkage earns a reminder to ratchet the recorded count down.
func checkBaseline(path string, count int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	recorded := -1
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil {
			return fmt.Errorf("baseline %s: %q is not an integer", path, line)
		}
		recorded = n
		break
	}
	if recorded < 0 {
		return fmt.Errorf("baseline %s: no count found", path)
	}
	switch {
	case count > recorded:
		return fmt.Errorf("suppression ratchet: %d //pgalint:ignore directive(s), baseline allows %d — fix the findings or bump %s with review",
			count, recorded, path)
	case count < recorded:
		fmt.Fprintf(os.Stderr, "pgalint: note: %d //pgalint:ignore directive(s), baseline allows %d — ratchet %s down\n",
			count, recorded, path)
	}
	return nil
}

// filterPackages selects the module packages matching the command-line
// patterns. Patterns are module-relative paths, with "..." matching any
// suffix; no patterns (or "./...") selects everything. A pattern that
// matches nothing is an error — a typo'd path in CI must not silently
// gate zero packages.
func filterPackages(mod *analysis.Module, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, raw := range patterns {
		pat := strings.TrimPrefix(raw, "./")
		pat = strings.TrimSuffix(pat, "/")
		matched := false
		for _, pkg := range mod.Pkgs {
			if !matchPattern(mod.Path, pat, pkg.Path) {
				continue
			}
			matched = true
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", raw)
		}
	}
	return out, nil
}

// matchPattern matches a module-relative pattern against an import path.
func matchPattern(modPath, pat, pkgPath string) bool {
	if pat == "..." || pat == "." {
		return true
	}
	full := modPath
	if base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/"); base != "" {
		full = modPath + "/" + base
	}
	if strings.HasSuffix(pat, "...") {
		return pkgPath == full || strings.HasPrefix(pkgPath, full+"/")
	}
	return pkgPath == full
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pgalint: %v\n", err)
	os.Exit(2)
}
