// Command pgalint runs the framework's static-analysis suite
// (internal/analysis) over the module: determinism and concurrency
// contracts the compiler cannot check.
//
// Usage:
//
//	pgalint [-json] [-sarif] [-graph] [-rules] [-time] [-deadline d] [packages]
//
// With no arguments it lints every package of the enclosing module
// (equivalent to ./...). Package patterns are module-relative:
// "./...", "./internal/...", "./internal/island". Exit status is 0 when
// no findings survive suppression, 1 when there are findings (or the
// -deadline budget is exceeded), and 2 on a load failure.
//
// -graph skips linting entirely and dumps the interprocedural call
// graph (functions, closures, call/spawn/ref edges) as JSON — the same
// graph the summary engine propagates effect facts over.
//
// -sarif emits findings as a SARIF 2.1.0 log for GitHub code scanning;
// -time reports per-rule wall time on stderr; -deadline fails the run
// when analysis (load + lint) exceeds the given budget, keeping the CI
// gate honest about linter cost.
//
// Suppress a finding with a justification comment on or directly above
// the offending line:
//
//	//pgalint:ignore rule why this specific pattern is provably safe
//
// The justification is mandatory: a bare directive is itself reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pga/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	graphOut := flag.Bool("graph", false, "dump the interprocedural call graph as JSON and exit")
	rules := flag.Bool("rules", false, "list the registered rules and exit")
	timing := flag.Bool("time", false, "report per-rule wall time on stderr")
	deadline := flag.Duration("deadline", 0, "fail if load+lint exceeds this duration (0 = no budget)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pgalint [-json] [-sarif] [-graph] [-rules] [-time] [-deadline d] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	registry := analysis.Registry()
	if *rules {
		for _, a := range registry {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	start := time.Now()
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fatal(err)
	}

	pkgs, err := filterPackages(mod, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *graphOut {
		data, err := analysis.BuildGraph(pkgs).JSON(mod.Root, mod.Fset)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
		return
	}

	diags, timings := analysis.RunAnalyzersTimed(mod.Root, pkgs, registry,
		func() int64 { return time.Now().UnixNano() })

	if *timing {
		for _, rt := range timings {
			fmt.Fprintf(os.Stderr, "pgalint: %-14s %8.1fms\n",
				rt.Rule, float64(rt.Nanos)/1e6)
		}
		fmt.Fprintf(os.Stderr, "pgalint: %-14s %8.1fms (load + lint)\n",
			"total", float64(time.Since(start))/1e6)
	}

	switch {
	case *sarifOut:
		data, err := analysis.SARIF(diags, registry)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", data)
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}

	failed := false
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "pgalint: %d finding(s)\n", len(diags))
		}
		failed = true
	}
	if *deadline > 0 {
		if elapsed := time.Since(start); elapsed > *deadline {
			fmt.Fprintf(os.Stderr, "pgalint: analysis took %v, over the %v deadline\n",
				elapsed.Round(time.Millisecond), *deadline)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// filterPackages selects the module packages matching the command-line
// patterns. Patterns are module-relative paths, with "..." matching any
// suffix; no patterns (or "./...") selects everything. A pattern that
// matches nothing is an error — a typo'd path in CI must not silently
// gate zero packages.
func filterPackages(mod *analysis.Module, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		return mod.Pkgs, nil
	}
	var out []*analysis.Package
	seen := map[string]bool{}
	for _, raw := range patterns {
		pat := strings.TrimPrefix(raw, "./")
		pat = strings.TrimSuffix(pat, "/")
		matched := false
		for _, pkg := range mod.Pkgs {
			if !matchPattern(mod.Path, pat, pkg.Path) {
				continue
			}
			matched = true
			if !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no packages", raw)
		}
	}
	return out, nil
}

// matchPattern matches a module-relative pattern against an import path.
func matchPattern(modPath, pat, pkgPath string) bool {
	if pat == "..." || pat == "." {
		return true
	}
	full := modPath
	if base := strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/"); base != "" {
		full = modPath + "/" + base
	}
	if strings.HasSuffix(pat, "...") {
		return pkgPath == full || strings.HasPrefix(pkgPath, full+"/")
	}
	return pkgPath == full
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pgalint: %v\n", err)
	os.Exit(2)
}
