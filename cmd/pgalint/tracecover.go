package main

// -tracecover assembly: this file is the one place the linter binary
// touches product packages. It gathers the runtime equivalence-pair
// registries (core, operators, island), the operator registry and the
// pinned golden-trace scenario table, and feeds them to the pure
// analysis.BuildTraceCover transform. A sync test in this package keeps
// the runtime pair union identical to the analysis-side
// DefaultDrawParityConfig, so internal/analysis itself never imports
// product code.

import (
	"pga/internal/analysis"
	"pga/internal/core"
	"pga/internal/equiv"
	"pga/internal/island"
	"pga/internal/operators"
)

// allDrawPairs is the union of every package's declared equivalence
// pairs.
func allDrawPairs() []core.DrawPair {
	var pairs []core.DrawPair
	pairs = append(pairs, core.DrawPairs()...)
	pairs = append(pairs, operators.DrawPairs()...)
	pairs = append(pairs, island.DrawPairs()...)
	return pairs
}

// buildTraceCover runs the golden-trace coverage audit over the runtime
// registries.
func buildTraceCover() *analysis.TraceCoverReport {
	var tps []analysis.TracePair
	for _, p := range allDrawPairs() {
		tps = append(tps, analysis.TracePair{A: p.A, B: p.B, Op: p.Op, Test: p.Test, Why: p.Why})
	}
	var ops []string
	for _, op := range operators.RegisteredOperators() {
		ops = append(ops, operators.OperatorTypeName(op))
	}
	var scs []analysis.TraceScenario
	for _, sc := range equiv.Scenarios() {
		scs = append(scs, analysis.TraceScenario{Name: sc.Name, Ops: sc.Ops})
	}
	return analysis.BuildTraceCover(tps, ops, scs)
}
