// Command pgabench runs the experiment suite that regenerates the
// survey's table and every reviewed quantitative claim (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	pgabench               # run the full suite (minutes)
//	pgabench -quick        # reduced sizes (seconds; smoke test)
//	pgabench -list         # list experiment IDs
//	pgabench -run E02,E06  # run selected experiments
//	pgabench -json -quick  # hot-path micro-benchmarks + experiment
//	                       # timings as JSON (-out, default BENCH_8.json)
//	pgabench -json -quick -gate 1.0
//	                       # same, failing (exit 1) when a gated
//	                       # benchmark's time_ratio drops below 1.0
//	                       # or its allocs/op stops beating the seed
//	                       # baseline by the same factor
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pga/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced sizes")
	list := flag.Bool("list", false, "list experiments and exit")
	runIDs := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	jsonOut := flag.Bool("json", false, "emit micro-benchmarks + experiment timings as JSON")
	outPath := flag.String("out", "BENCH_8.json", "output path for -json")
	gateMin := flag.Float64("gate", 0, "with -json: fail when a gated benchmark's time_ratio is below this or its allocs/op misses the seed baseline by the same factor (0 disables)")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *runIDs == "" {
		selected = exp.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "pgabench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *jsonOut {
		if err := runJSON(selected, *quick, *outPath, *gateMin); err != nil {
			fmt.Fprintf(os.Stderr, "pgabench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Printf("pgabench: %d experiment(s), %s mode\n", len(selected), mode)
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		fmt.Printf("\n=== %s: %s ===\n", e.ID, e.Title)
		fmt.Printf("    reproduces: %s\n\n", e.Source)
		e.Run(os.Stdout, *quick)
		fmt.Printf("\n    [%s completed in %v]\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\npgabench: suite completed in %v\n", time.Since(start).Round(time.Millisecond))
}
