package main

// The -json mode: run the hot-path micro-benchmarks under
// testing.Benchmark, compare them against the pre-optimization seed
// baselines recorded below, time the quick experiment suite, and write
// the whole report as one JSON document (BENCH_8.json in CI). With
// -gate, the gated entries (the word-operator step benchmarks) must
// beat their seed baselines — time_ratio at or above the threshold, and
// allocs/op under seed allocs ÷ threshold — or the run exits non-zero;
// the alloc-budget tests in internal/ga, internal/cellular and
// internal/island enforce the hard zero/fixed budgets.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"pga"
	"pga/internal/core"
	"pga/internal/exp"
)

// seedBaseline is a micro-benchmark result measured at the seed commit
// (go test -bench -benchmem, pre zero-allocation rework). The ratios in
// the report are seed ÷ current, so >1 means the hot path improved.
type seedBaseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is one micro-benchmark with its baseline comparison.
type benchReport struct {
	Name        string       `json:"name"`
	Iterations  int          `json:"iterations"`
	NsPerOp     float64      `json:"ns_per_op"`
	BytesPerOp  int64        `json:"bytes_per_op"`
	AllocsPerOp int64        `json:"allocs_per_op"`
	Seed        seedBaseline `json:"seed_baseline"`
	BytesRatio  float64      `json:"bytes_ratio"`  // seed B/op ÷ current B/op
	AllocsRatio float64      `json:"allocs_ratio"` // seed allocs/op ÷ current allocs/op
	TimeRatio   float64      `json:"time_ratio"`   // seed ns/op ÷ current ns/op
}

// expReport is one experiment's wall time in the selected mode.
type expReport struct {
	ID       string  `json:"id"`
	Title    string  `json:"title"`
	WallMs   float64 `json:"wall_ms"`
	QuickRun bool    `json:"quick"`
}

// jsonReport is the full document written to -out.
type jsonReport struct {
	Schema      string        `json:"schema"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	CPUs        int           `json:"cpus"`
	GeneratedAt string        `json:"generated_at"`
	Benchmarks  []benchReport `json:"benchmarks"`
	Experiments []expReport   `json:"experiments"`
}

// ratio guards the seed/current divisions against zero-allocation
// denominators: a baseline improved all the way to zero reports the
// baseline value itself (treat "n → 0" as an n-fold reduction).
func ratio(seed, cur float64) float64 {
	if cur == 0 {
		return seed
	}
	return seed / cur
}

// hotBench is one JSON-report micro-benchmark. Gated entries must beat
// their seed baseline (time_ratio >= the -gate threshold) for the perf
// gate to pass; ungated entries are informative. The absolute bit-wise
// step times drift with host load, so the gate rides on the word-path
// entries whose margin over seed (several-fold) dwarfs host noise.
type hotBench struct {
	name  string
	seed  seedBaseline
	gated bool
	run   func(b *testing.B)
}

// hotPathBenchmarks mirrors the root micro-benchmarks (bench_test.go)
// one-for-one so the JSON report tracks the same configurations the
// seed baselines were measured on.
func hotPathBenchmarks() []hotBench {
	gaCfg := func() pga.GAConfig {
		return pga.GAConfig{
			Problem:   pga.OneMax(128),
			PopSize:   100,
			Crossover: pga.UniformCrossover{},
			Mutator:   pga.BitFlip{},
			RNG:       pga.NewRNG(1),
		}
	}
	return []hotBench{
		{
			name: "GenerationalStep",
			seed: seedBaseline{NsPerOp: 146136, BytesPerOp: 21352, AllocsPerOp: 309},
			run: func(b *testing.B) {
				e := pga.NewGenerational(gaCfg())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		{
			name: "SteadyStateStep",
			seed: seedBaseline{NsPerOp: 247311, BytesPerOp: 32087, AllocsPerOp: 480},
			run: func(b *testing.B) {
				e := pga.NewSteadyState(gaCfg())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		// The word-operator variants run the same generational and
		// steady-state OneMax steps as the two entries above, so they are
		// compared against the same seed measurements: the seed commit had
		// no word operators, and the packed []uint64 path is the claimed
		// speedup over its per-bool loops. These carry the perf gate.
		{
			name:  "GenerationalStepWordOps",
			seed:  seedBaseline{NsPerOp: 146136, BytesPerOp: 21352, AllocsPerOp: 309},
			gated: true,
			run: func(b *testing.B) {
				cfg := gaCfg()
				cfg.Crossover = pga.KPointWordCrossover{K: 2}
				cfg.Mutator = pga.BlockFlipMutation{}
				e := pga.NewGenerational(cfg)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		{
			name:  "SteadyStateStepWordOps",
			seed:  seedBaseline{NsPerOp: 247311, BytesPerOp: 32087, AllocsPerOp: 480},
			gated: true,
			run: func(b *testing.B) {
				cfg := gaCfg()
				cfg.Crossover = pga.UniformWordCrossover{}
				cfg.Mutator = pga.BlockFlipMutation{}
				e := pga.NewSteadyState(cfg)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		{
			name: "CellularSweep",
			seed: seedBaseline{NsPerOp: 215677, BytesPerOp: 32973, AllocsPerOp: 480},
			run: func(b *testing.B) {
				e := pga.NewCellular(pga.CellularConfig{
					Problem:   pga.OneMax(128),
					Rows:      10,
					Cols:      10,
					Crossover: pga.UniformCrossover{},
					Mutator:   pga.BitFlip{},
					RNG:       pga.NewRNG(1),
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		// Constructed through the declarative spec layer — spec-built
		// runtimes are draw-identical to hand-wired ones, so the numbers
		// stay comparable to the seed measurement of the same island step.
		{
			name: "IslandGeneration",
			seed: seedBaseline{NsPerOp: 297430, BytesPerOp: 43072, AllocsPerOp: 656},
			run: func(b *testing.B) {
				built, err := pga.BuildSpec(pga.Spec{
					Model:   "islands",
					Problem: pga.SpecProblem{Name: "onemax", Size: 128},
					Engine: pga.SpecEngine{
						Pop:       25,
						Crossover: &pga.SpecOperator{Name: "uniform"},
						Mutator:   &pga.SpecOperator{Name: "bitflip"},
					},
					Islands: &pga.SpecIslands{
						Demes:     8,
						Migration: pga.SpecMigration{Interval: 10, Count: 2},
					},
					Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				m := built.Islands
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.RunSequential(pga.MaxGenerations(1), false)
				}
			},
		},
		// The batched-evaluation seam: SerialEvaluator dispatching one
		// EvaluateBatch call for 256 pending 512-bit OneMax genomes. The
		// baseline is the scalar per-bool EvaluateAll loop measured at the
		// predecessor commit (a101f3a) on the reference host, since the
		// seam did not exist at the seed. Informative, not gated: the win
		// here is dominated by popcount evaluation, already gated above.
		{
			name: "BatchEvaluateAll",
			seed: seedBaseline{NsPerOp: 102193, BytesPerOp: 0, AllocsPerOp: 0},
			run: func(b *testing.B) {
				prob := pga.OneMax(512)
				r := pga.NewRNG(1)
				pop := &pga.Population{}
				for i := 0; i < 256; i++ {
					pop.Members = append(pop.Members, &pga.Individual{Genome: prob.NewGenome(r)})
				}
				var e core.SerialEvaluator
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, ind := range pop.Members {
						ind.Evaluated = false
					}
					e.EvaluateAll(prob, pop)
				}
			},
		},
	}
}

// runJSON produces the perf report: micro-benchmarks against the seed
// baselines plus wall times for the selected experiments, written as
// indented JSON to outPath. With gateMin > 0, every gated benchmark's
// time_ratio must reach the threshold or the run fails after the report
// is written (the report stays on disk for diagnosis).
func runJSON(selected []exp.Experiment, quick bool, outPath string, gateMin float64) error {
	report := jsonReport{
		Schema:      "pga-bench/v1",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("pgabench: measuring %d hot-path micro-benchmarks\n", len(hotPathBenchmarks()))
	var gateFailures []string
	for _, hb := range hotPathBenchmarks() {
		res := testing.Benchmark(hb.run)
		br := benchReport{
			Name:        hb.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Seed:        hb.seed,
			BytesRatio:  ratio(float64(hb.seed.BytesPerOp), float64(res.AllocedBytesPerOp())),
			AllocsRatio: ratio(float64(hb.seed.AllocsPerOp), float64(res.AllocsPerOp())),
			TimeRatio:   ratio(hb.seed.NsPerOp, float64(res.NsPerOp())),
		}
		report.Benchmarks = append(report.Benchmarks, br)
		fmt.Printf("  %-24s %10d ns/op %8d B/op %6d allocs/op  (time_ratio %.2f)\n",
			hb.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp(), br.TimeRatio)
		if gateMin > 0 && hb.gated {
			if br.TimeRatio < gateMin {
				gateFailures = append(gateFailures,
					fmt.Sprintf("%s: time_ratio %.3f < %.3f", hb.name, br.TimeRatio, gateMin))
			}
			// Allocation regressions hide inside a time_ratio that still
			// clears the bar on a fast host, so allocs/op is gated too,
			// symmetrically with time: the seed count must exceed the
			// current count by at least the gate factor. Multiplication
			// keeps a zero seed baseline meaning "must stay zero".
			if float64(res.AllocsPerOp())*gateMin > float64(hb.seed.AllocsPerOp) {
				gateFailures = append(gateFailures,
					fmt.Sprintf("%s: allocs_per_op %d exceeds seed %d at gate %.3f",
						hb.name, res.AllocsPerOp(), hb.seed.AllocsPerOp, gateMin))
			}
		}
	}

	fmt.Printf("pgabench: timing %d experiment(s)\n", len(selected))
	for _, e := range selected {
		t0 := time.Now()
		e.Run(io.Discard, quick)
		report.Experiments = append(report.Experiments, expReport{
			ID:       e.ID,
			Title:    e.Title,
			WallMs:   float64(time.Since(t0).Microseconds()) / 1000,
			QuickRun: quick,
		})
		fmt.Printf("  %-5s %8.1f ms  %s\n",
			e.ID, report.Experiments[len(report.Experiments)-1].WallMs, e.Title)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("pgabench: wrote %s\n", outPath)
	if len(gateFailures) > 0 {
		return fmt.Errorf("perf gate failed:\n  %s", strings.Join(gateFailures, "\n  "))
	}
	return nil
}
