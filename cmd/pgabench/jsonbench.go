package main

// The -json mode: run the hot-path micro-benchmarks under
// testing.Benchmark, compare them against the pre-optimization seed
// baselines recorded below, time the quick experiment suite, and write
// the whole report as one JSON document (BENCH_3.json in CI). The perf
// gate reads bytes_ratio from this file; the alloc-budget tests in
// internal/ga, internal/cellular and internal/island enforce the hard
// zero/fixed budgets.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"pga"
	"pga/internal/exp"
)

// seedBaseline is a micro-benchmark result measured at the seed commit
// (go test -bench -benchmem, pre zero-allocation rework). The ratios in
// the report are seed ÷ current, so >1 means the hot path improved.
type seedBaseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is one micro-benchmark with its baseline comparison.
type benchReport struct {
	Name        string       `json:"name"`
	Iterations  int          `json:"iterations"`
	NsPerOp     float64      `json:"ns_per_op"`
	BytesPerOp  int64        `json:"bytes_per_op"`
	AllocsPerOp int64        `json:"allocs_per_op"`
	Seed        seedBaseline `json:"seed_baseline"`
	BytesRatio  float64      `json:"bytes_ratio"`  // seed B/op ÷ current B/op
	AllocsRatio float64      `json:"allocs_ratio"` // seed allocs/op ÷ current allocs/op
	TimeRatio   float64      `json:"time_ratio"`   // seed ns/op ÷ current ns/op
}

// expReport is one experiment's wall time in the selected mode.
type expReport struct {
	ID       string  `json:"id"`
	Title    string  `json:"title"`
	WallMs   float64 `json:"wall_ms"`
	QuickRun bool    `json:"quick"`
}

// jsonReport is the full document written to -out.
type jsonReport struct {
	Schema      string        `json:"schema"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	CPUs        int           `json:"cpus"`
	GeneratedAt string        `json:"generated_at"`
	Benchmarks  []benchReport `json:"benchmarks"`
	Experiments []expReport   `json:"experiments"`
}

// ratio guards the seed/current divisions against zero-allocation
// denominators: a baseline improved all the way to zero reports the
// baseline value itself (treat "n → 0" as an n-fold reduction).
func ratio(seed, cur float64) float64 {
	if cur == 0 {
		return seed
	}
	return seed / cur
}

// hotPathBenchmarks mirrors the root micro-benchmarks (bench_test.go)
// one-for-one so the JSON report tracks the same configurations the
// seed baselines were measured on.
func hotPathBenchmarks() []struct {
	name string
	seed seedBaseline
	run  func(b *testing.B)
} {
	gaCfg := func() pga.GAConfig {
		return pga.GAConfig{
			Problem:   pga.OneMax(128),
			PopSize:   100,
			Crossover: pga.UniformCrossover{},
			Mutator:   pga.BitFlip{},
			RNG:       pga.NewRNG(1),
		}
	}
	return []struct {
		name string
		seed seedBaseline
		run  func(b *testing.B)
	}{
		{
			name: "GenerationalStep",
			seed: seedBaseline{NsPerOp: 146136, BytesPerOp: 21352, AllocsPerOp: 309},
			run: func(b *testing.B) {
				e := pga.NewGenerational(gaCfg())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		{
			name: "SteadyStateStep",
			seed: seedBaseline{NsPerOp: 247311, BytesPerOp: 32087, AllocsPerOp: 480},
			run: func(b *testing.B) {
				e := pga.NewSteadyState(gaCfg())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		{
			name: "CellularSweep",
			seed: seedBaseline{NsPerOp: 215677, BytesPerOp: 32973, AllocsPerOp: 480},
			run: func(b *testing.B) {
				e := pga.NewCellular(pga.CellularConfig{
					Problem:   pga.OneMax(128),
					Rows:      10,
					Cols:      10,
					Crossover: pga.UniformCrossover{},
					Mutator:   pga.BitFlip{},
					RNG:       pga.NewRNG(1),
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			},
		},
		{
			name: "IslandGeneration",
			seed: seedBaseline{NsPerOp: 297430, BytesPerOp: 43072, AllocsPerOp: 656},
			run: func(b *testing.B) {
				m := pga.NewIslands(pga.IslandConfig{
					Demes:    8,
					Topology: pga.Ring,
					GA: pga.GAConfig{
						Problem:   pga.OneMax(128),
						PopSize:   25,
						Crossover: pga.UniformCrossover{},
						Mutator:   pga.BitFlip{},
					},
					Migration: pga.Migration{Interval: 10, Count: 2},
					Seed:      1,
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.RunSequential(pga.MaxGenerations(1), false)
				}
			},
		},
	}
}

// runJSON produces the perf report: micro-benchmarks against the seed
// baselines plus wall times for the selected experiments, written as
// indented JSON to outPath.
func runJSON(selected []exp.Experiment, quick bool, outPath string) error {
	report := jsonReport{
		Schema:      "pga-bench/v1",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("pgabench: measuring %d hot-path micro-benchmarks\n", len(hotPathBenchmarks()))
	for _, hb := range hotPathBenchmarks() {
		res := testing.Benchmark(hb.run)
		br := benchReport{
			Name:        hb.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Seed:        hb.seed,
			BytesRatio:  ratio(float64(hb.seed.BytesPerOp), float64(res.AllocedBytesPerOp())),
			AllocsRatio: ratio(float64(hb.seed.AllocsPerOp), float64(res.AllocsPerOp())),
			TimeRatio:   ratio(hb.seed.NsPerOp, float64(res.NsPerOp())),
		}
		report.Benchmarks = append(report.Benchmarks, br)
		fmt.Printf("  %-18s %10d ns/op %8d B/op %6d allocs/op  (seed: %d B/op, %d allocs/op)\n",
			hb.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp(),
			hb.seed.BytesPerOp, hb.seed.AllocsPerOp)
	}

	fmt.Printf("pgabench: timing %d experiment(s)\n", len(selected))
	for _, e := range selected {
		t0 := time.Now()
		e.Run(io.Discard, quick)
		report.Experiments = append(report.Experiments, expReport{
			ID:       e.ID,
			Title:    e.Title,
			WallMs:   float64(time.Since(t0).Microseconds()) / 1000,
			QuickRun: quick,
		})
		fmt.Printf("  %-5s %8.1f ms  %s\n",
			e.ID, report.Experiments[len(report.Experiments)-1].WallMs, e.Title)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("pgabench: wrote %s\n", outPath)
	return nil
}
