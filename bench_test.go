package pga

// The benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md's index (each runs the experiment's quick configuration and
// reports its wall time), plus micro-benchmarks of the engines and the
// parallel models. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The full-size experiment tables are produced by cmd/pgabench (see
// EXPERIMENTS.md for recorded output).

import (
	"io"
	"testing"

	"pga/internal/core"
	"pga/internal/exp"
)

// benchExperiment runs the named experiment in quick mode b.N times.
func benchExperiment(b *testing.B, id string) {
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Run(io.Discard, true)
	}
}

func BenchmarkE01Table1(b *testing.B)         { benchExperiment(b, "E01") }
func BenchmarkE02Speedup(b *testing.B)        { benchExperiment(b, "E02") }
func BenchmarkE03Migration(b *testing.B)      { benchExperiment(b, "E03") }
func BenchmarkE04SyncAsync(b *testing.B)      { benchExperiment(b, "E04") }
func BenchmarkE05Schemes(b *testing.B)        { benchExperiment(b, "E05") }
func BenchmarkE06Takeover(b *testing.B)       { benchExperiment(b, "E06") }
func BenchmarkE07FaultTolerance(b *testing.B) { benchExperiment(b, "E07") }
func BenchmarkE08HGA(b *testing.B)            { benchExperiment(b, "E08") }
func BenchmarkE09SIM(b *testing.B)            { benchExperiment(b, "E09") }
func BenchmarkE10CantuPaz(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Punctuated(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Scalability(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13Applications(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14Topology(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15Supervision(b *testing.B)    { benchExperiment(b, "E15") }

func BenchmarkA01Elitism(b *testing.B)            { benchExperiment(b, "A01") }
func BenchmarkA02GrayEncoding(b *testing.B)       { benchExperiment(b, "A02") }
func BenchmarkA03MigrantIntegration(b *testing.B) { benchExperiment(b, "A03") }
func BenchmarkA04AsyncBuffer(b *testing.B)        { benchExperiment(b, "A04") }
func BenchmarkA05PopulationSizing(b *testing.B)   { benchExperiment(b, "A05") }
func BenchmarkA06Diversity(b *testing.B)          { benchExperiment(b, "A06") }
func BenchmarkA07P2PChurn(b *testing.B)           { benchExperiment(b, "A07") }
func BenchmarkA08SelectionPressure(b *testing.B)  { benchExperiment(b, "A08") }
func BenchmarkA09Heterogeneous(b *testing.B)      { benchExperiment(b, "A09") }

// ---- micro-benchmarks of the engines and models ----

// BenchmarkGenerationalStep measures one generation of the sequential
// baseline (pop 100, onemax 128).
func BenchmarkGenerationalStep(b *testing.B) {
	e := NewGenerational(GAConfig{
		Problem:   OneMax(128),
		PopSize:   100,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(1),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkSteadyStateStep measures PopSize births of the steady-state
// engine.
func BenchmarkSteadyStateStep(b *testing.B) {
	e := NewSteadyState(GAConfig{
		Problem:   OneMax(128),
		PopSize:   100,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(1),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkCellularSweep measures one sweep of a 10×10 cellular grid.
func BenchmarkCellularSweep(b *testing.B) {
	e := NewCellular(CellularConfig{
		Problem:   OneMax(128),
		Rows:      10,
		Cols:      10,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(1),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkIslandGeneration measures one synchronized island generation
// (8 demes × 25).
func BenchmarkIslandGeneration(b *testing.B) {
	m := NewIslands(IslandConfig{
		Demes:    8,
		Topology: Ring,
		GA: GAConfig{
			Problem:   OneMax(128),
			PopSize:   25,
			Crossover: UniformCrossover{},
			Mutator:   BitFlip{},
		},
		Migration: Migration{Interval: 10, Count: 2},
		Seed:      1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunSequential(MaxGenerations(1), false)
	}
}

// BenchmarkFarmEvaluateAll measures one parallel evaluation of 100
// individuals over 4 workers.
func BenchmarkFarmEvaluateAll(b *testing.B) {
	prob := OneMax(128)
	farm := NewFarm(1, UniformWorkers(4))
	r := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pop := freshPopulation(prob, 100, r)
		b.StartTimer()
		farm.EvaluateAll(prob, pop)
	}
}

// freshPopulation builds an unevaluated population for benchmarks.
func freshPopulation(p Problem, n int, r *RNG) *Population {
	pop := &Population{}
	for i := 0; i < n; i++ {
		pop.Members = append(pop.Members, &Individual{Genome: p.NewGenome(r)})
	}
	return pop
}

// BenchmarkGenerationalStepWordOps is BenchmarkGenerationalStep with the
// word-granular operators (KPointWordCrossover + BlockFlipMutation): the
// packed-layout fast path the BENCH_8 report compares against the
// bit-wise operator step.
func BenchmarkGenerationalStepWordOps(b *testing.B) {
	e := NewGenerational(GAConfig{
		Problem:   OneMax(128),
		PopSize:   100,
		Crossover: KPointWordCrossover{K: 2},
		Mutator:   BlockFlipMutation{},
		RNG:       NewRNG(1),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkSteadyStateStepWordOps is the steady-state counterpart with
// UniformWordCrossover.
func BenchmarkSteadyStateStepWordOps(b *testing.B) {
	e := NewSteadyState(GAConfig{
		Problem:   OneMax(128),
		PopSize:   100,
		Crossover: UniformWordCrossover{},
		Mutator:   BlockFlipMutation{},
		RNG:       NewRNG(1),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkBatchEvaluate measures the batched evaluation seam against
// the scalar path on the same pending population (OneMax popcount).
func BenchmarkBatchEvaluate(b *testing.B) {
	prob := OneMax(512)
	r := NewRNG(1)
	pop := freshPopulation(prob, 256, r)
	invalidate := func() {
		for _, ind := range pop.Members {
			ind.Evaluated = false
		}
	}
	b.Run("batch", func(b *testing.B) {
		var e core.SerialEvaluator
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			invalidate()
			e.EvaluateAll(prob, pop)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			invalidate()
			for _, ind := range pop.Members {
				if !ind.Evaluated {
					ind.Fitness = prob.Evaluate(ind.Genome)
					ind.Evaluated = true
				}
			}
		}
	})
}
