package pga_test

import (
	"fmt"

	"pga"
)

// ExampleNewGenerational shows the minimal sequential run: OneMax solved
// by a generational GA.
func ExampleNewGenerational() {
	prob := pga.OneMax(32)
	e := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   40,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		RNG:       pga.NewRNG(1),
	})
	res := pga.Run(e, pga.RunOptions{Stop: pga.AnyOf{pga.MaxGenerations(200), pga.Target(prob)}})
	fmt.Println(res.Solved, res.BestFitness)
	// Output: true 32
}

// ExampleNewIslands shows the coarse-grained island model: four demes on
// a ring with periodic migration.
func ExampleNewIslands() {
	prob := pga.OneMax(32)
	m := pga.NewIslands(pga.IslandConfig{
		Demes:    4,
		Topology: pga.Ring,
		GA: pga.GAConfig{
			Problem:   prob,
			PopSize:   15,
			Crossover: pga.UniformCrossover{},
			Mutator:   pga.BitFlip{},
		},
		Migration: pga.Migration{Interval: 5, Count: 1},
		Seed:      1,
	})
	res := m.RunSequential(pga.AnyOf{pga.MaxGenerations(200), pga.Target(prob)}, false)
	fmt.Println(res.Solved, res.BestFitness)
	// Output: true 32
}

// ExampleNewFarm shows the global master–slave model: the same GA with
// fitness evaluation farmed to parallel workers.
func ExampleNewFarm() {
	prob := pga.OneMax(32)
	farm := pga.NewFarm(1, pga.UniformWorkers(4))
	e := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   40,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		Evaluator: farm,
		RNG:       pga.NewRNG(1),
	})
	res := pga.Run(e, pga.RunOptions{Stop: pga.AnyOf{pga.MaxGenerations(200), pga.Target(prob)}})
	fmt.Println(res.Solved, farm.Evaluations() == res.Evaluations)
	// Output: true true
}

// ExampleTarget shows the stop condition built from a problem's known
// optimum.
func ExampleTarget() {
	prob := pga.OneMax(8)
	stop := pga.Target(prob)
	fmt.Println(stop.Done(pga.Status{BestFitness: 7}), stop.Done(pga.Status{BestFitness: 8}))
	// Output: false true
}
