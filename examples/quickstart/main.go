// Quickstart: solve OneMax four ways — a sequential GA, an island-model
// PGA, a master–slave PGA, and the same island run built from a
// declarative JSON spec — using only the public pga API.
package main

import (
	"fmt"

	"pga"
)

func main() {
	prob := pga.OneMax(128)
	stop := pga.AnyOf{pga.MaxGenerations(500), pga.Target(prob)}

	// 1. Sequential baseline.
	seq := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   100,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		RNG:       pga.NewRNG(42),
	})
	res := pga.Run(seq, pga.RunOptions{Stop: stop})
	fmt.Printf("sequential : best=%v gens=%d evals=%d solved=%v\n",
		res.BestFitness, res.Generations, res.Evaluations, res.Solved)

	// 2. Island model: 8 demes on a ring, migration every 10 generations.
	isl := pga.NewIslands(pga.IslandConfig{
		Demes:    8,
		Topology: pga.Ring,
		GA: pga.GAConfig{
			Problem:   prob,
			PopSize:   25, // 8 × 25 = 200 total
			Crossover: pga.UniformCrossover{},
			Mutator:   pga.BitFlip{},
		},
		Migration: pga.Migration{Interval: 10, Count: 2},
		Seed:      42,
	})
	ires := isl.RunSequential(stop, false)
	fmt.Printf("islands    : best=%v gens=%d evals=%d solved=%v migrations=%d\n",
		ires.BestFitness, ires.Generations, ires.Evaluations, ires.Solved, ires.Migrations)

	// 3. Master–slave: the same GA, fitness farmed to 4 parallel workers.
	farm := pga.NewFarm(42, pga.UniformWorkers(4))
	ms := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   100,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		Evaluator: farm,
		RNG:       pga.NewRNG(42),
	})
	mres := pga.Run(ms, pga.RunOptions{Stop: pga.AnyOf{pga.MaxGenerations(500), pga.Target(prob)}})
	fmt.Printf("masterslave: best=%v gens=%d evals=%d solved=%v (farm evals=%d)\n",
		mres.BestFitness, mres.Generations, mres.Evaluations, mres.Solved, farm.Evaluations())

	// 4. The same island run, declaratively: one JSON spec builds the
	// runtime (this is what `pgarun -config` runs). Draw-identical to the
	// hand-wired island model above — same best, same counts.
	doc := []byte(`{
		"model": "islands",
		"problem": {"name": "onemax", "size": 128},
		"engine": {"pop": 25, "crossover": {"name": "uniform"}, "mutator": {"name": "bitflip"}},
		"islands": {"demes": 8, "migration": {"interval": 10, "count": 2}},
		"budget": {"generations": 500, "target_optimum": true},
		"seed": 42
	}`)
	sp, err := pga.ParseSpec(doc)
	if err != nil {
		panic(err)
	}
	b, err := pga.BuildSpec(*sp)
	if err != nil {
		panic(err)
	}
	rep := b.Run(pga.SpecRunOpts{})
	fmt.Printf("spec       : best=%v gens=%d evals=%d solved=%v migrations=%d\n",
		rep.Best, rep.Generations, rep.Evaluations, rep.Solved, rep.Migrations)
}
