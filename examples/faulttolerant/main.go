// Fault-tolerant master–slave evaluation: runs the same GA on a healthy
// worker farm and on a farm where workers fail and die mid-run,
// demonstrating Gagné et al.'s transparency/robustness/adaptivity — the
// GA is oblivious, every run completes, and only redispatch overhead is
// paid.
package main

import (
	"fmt"

	"pga"
)

func run(label string, specs []pga.WorkerSpec) {
	prob := pga.OneMax(96)
	farm := pga.NewFarm(11, specs)
	e := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   80,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		Evaluator: farm,
		RNG:       pga.NewRNG(11),
	})
	res := pga.Run(e, pga.RunOptions{Stop: pga.AnyOf{pga.MaxGenerations(400), pga.Target(prob)}})
	st := farm.Stats()
	fmt.Printf("%-28s solved=%-5v evals=%-6d redispatched=%-5d dead-workers=%d/%d\n",
		label, res.Solved, res.Evaluations, st.Redispatched, st.DeadWorkers, farm.Workers())
	fmt.Printf("%-28s per-worker tasks: %v\n\n", "", st.TasksPerWorker)
}

func main() {
	fmt.Println("master–slave farm under increasingly hostile conditions")
	fmt.Println("(same GA, same seed — only the machine room changes)")
	fmt.Println()

	// Healthy homogeneous farm.
	run("8 healthy workers", pga.UniformWorkers(8))

	// Heterogeneous speeds: the fast workers take proportionally more
	// tasks (adaptive load balancing).
	het := pga.UniformWorkers(8)
	for i := range het {
		het[i].Speed = 0.5 + float64(i)*0.4
	}
	run("heterogeneous speeds", het)

	// Flaky workers: 30% of attempts fail but nothing dies.
	flaky := pga.UniformWorkers(8)
	for i := 0; i < 4; i++ {
		flaky[i].FailProb = 0.3
	}
	run("4 flaky workers (30%)", flaky)

	// Hard failures: six workers die early; the survivors absorb the work.
	dying := pga.UniformWorkers(8)
	for i := 0; i < 6; i++ {
		dying[i] = pga.WorkerSpec{Speed: 1, FailProb: 0.5, MaxFailures: 2}
	}
	run("6/8 workers die", dying)

	// Total loss: every worker dies; the master finishes the job itself.
	doomed := make([]pga.WorkerSpec, 4)
	for i := range doomed {
		doomed[i] = pga.WorkerSpec{Speed: 1, FailProb: 1, MaxFailures: 1}
	}
	run("all workers die", doomed)
}
