// Fault tolerance at both levels of the library. First the master–slave
// farm: the same GA runs on a healthy worker farm and on farms where
// workers fail and die mid-run, demonstrating Gagné et al.'s
// transparency/robustness/adaptivity — the GA is oblivious, every run
// completes, and only redispatch overhead is paid. Then the island
// model's deme supervision: the same seeded parallel run executes with
// injected deme panics, a hang, and a permanent deme death, and recovers
// through checkpoint restarts and topology healing.
package main

import (
	"fmt"
	"time"

	"pga"
)

func run(label string, specs []pga.WorkerSpec) {
	prob := pga.OneMax(96)
	farm := pga.NewFarm(11, specs)
	e := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   80,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		Evaluator: farm,
		RNG:       pga.NewRNG(11),
	})
	res := pga.Run(e, pga.RunOptions{Stop: pga.AnyOf{pga.MaxGenerations(400), pga.Target(prob)}})
	st := farm.Stats()
	fmt.Printf("%-28s solved=%-5v evals=%-6d redispatched=%-5d dead-workers=%d/%d\n",
		label, res.Solved, res.Evaluations, st.Redispatched, st.DeadWorkers, farm.Workers())
	fmt.Printf("%-28s per-worker tasks: %v\n\n", "", st.TasksPerWorker)
}

func main() {
	fmt.Println("master–slave farm under increasingly hostile conditions")
	fmt.Println("(same GA, same seed — only the machine room changes)")
	fmt.Println()

	// Healthy homogeneous farm.
	run("8 healthy workers", pga.UniformWorkers(8))

	// Heterogeneous speeds: the fast workers take proportionally more
	// tasks (adaptive load balancing).
	het := pga.UniformWorkers(8)
	for i := range het {
		het[i].Speed = 0.5 + float64(i)*0.4
	}
	run("heterogeneous speeds", het)

	// Flaky workers: 30% of attempts fail but nothing dies.
	flaky := pga.UniformWorkers(8)
	for i := 0; i < 4; i++ {
		flaky[i].FailProb = 0.3
	}
	run("4 flaky workers (30%)", flaky)

	// Hard failures: six workers die early; the survivors absorb the work.
	dying := pga.UniformWorkers(8)
	for i := 0; i < 6; i++ {
		dying[i] = pga.WorkerSpec{Speed: 1, FailProb: 0.5, MaxFailures: 2}
	}
	run("6/8 workers die", dying)

	// Total loss: every worker dies; the master finishes the job itself.
	doomed := make([]pga.WorkerSpec, 4)
	for i := range doomed {
		doomed[i] = pga.WorkerSpec{Speed: 1, FailProb: 1, MaxFailures: 1}
	}
	run("all workers die", doomed)

	fmt.Println("island model under deme supervision")
	fmt.Println("(same seed — only the injected faults change)")
	fmt.Println()
	runIslands("fault-free", nil, nil)
	runIslands("panic + hang (transient)",
		&pga.Resilience{CheckpointEvery: 5, MaxRestarts: 3, Heartbeat: 30 * time.Millisecond},
		pga.NewFaultPlan().PanicAt(1, 6).HangAt(2, 9, 90*time.Millisecond))
	runIslands("deme 3 dies permanently",
		&pga.Resilience{CheckpointEvery: 5, MaxRestarts: -1},
		pga.NewFaultPlan().PanicAt(3, 8))
}

// runIslands runs a supervised 4-deme ring on OneMax with the given
// resilience tuning and fault script.
func runIslands(label string, res *pga.Resilience, plan *pga.FaultPlan) {
	if res == nil {
		res = &pga.Resilience{CheckpointEvery: 5, MaxRestarts: 3}
	}
	prob := pga.OneMax(64)
	m := pga.NewIslands(pga.IslandConfig{
		Demes:    4,
		Topology: pga.Ring,
		GA: pga.GAConfig{
			Problem:   prob,
			PopSize:   30,
			Crossover: pga.UniformCrossover{},
			Mutator:   pga.BitFlip{},
		},
		Migration:  pga.Migration{Interval: 5, Count: 2, Sync: true},
		Seed:       11,
		Resilience: res,
		Faults:     plan,
	})
	r := m.RunParallel(400, false)
	fmt.Printf("%-28s solved=%-5v gens=%-4d restarts=%d panics=%d timeouts=%d dead=%v\n",
		label, r.Solved, r.Generations, r.Restarts, r.PanicsRecovered, r.HeartbeatTimeouts, r.DeadDemes)
	for _, f := range r.Failures {
		fmt.Printf("%-28s   deme %d failed at gen %d (%s), restarted=%v\n", "", f.Deme, f.Gen, f.Kind, f.Restarted)
	}
	fmt.Println()
}
