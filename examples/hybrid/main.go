// Hybrid model: the survey's §3.3 describes the cluster-of-SMPs pattern —
// "a centralized model within each SMP machine, but running under a
// distributed model within machines in the cluster". This example
// composes the library's models the same way: an island (distributed)
// model whose demes each evaluate fitness through their own master–slave
// farm (centralized), all from the public API.
package main

import (
	"fmt"

	"pga"
)

func main() {
	prob := pga.Rastrigin(10)
	stop := pga.AnyOf{pga.MaxGenerations(300), pga.TargetFitness{Target: 0.01, Dir: pga.Minimize}}

	// Four "machines" (islands), each an SMP with a 4-worker farm.
	farms := make([]*pga.Farm, 4)
	hybrid := pga.NewIslandsWithEngines(
		pga.IslandConfig{Demes: 4, Topology: pga.BiRing, Migration: pga.Migration{Interval: 10, Count: 2}, Seed: 21},
		func(deme int, r *pga.RNG) pga.Engine {
			farms[deme] = pga.NewFarm(uint64(deme)+100, pga.UniformWorkers(4))
			return pga.NewGenerational(pga.GAConfig{
				Problem:   prob,
				PopSize:   40,
				Crossover: pga.SBXCrossover{},
				Mutator:   pga.PolynomialMutation{},
				Evaluator: farms[deme],
				RNG:       r,
			})
		})
	res := hybrid.RunSequential(stop, false)

	fmt.Println("hybrid model: 4 islands (distributed) × 4-worker farms (centralized)")
	fmt.Printf("rastrigin(10): best=%.6f gens=%d evals=%d migrations=%d\n",
		res.BestFitness, res.Generations, res.Evaluations, res.Migrations)
	for i, f := range farms {
		fmt.Printf("  island %d farm: %d evaluations across %d workers\n", i, f.Evaluations(), f.Workers())
	}
}
