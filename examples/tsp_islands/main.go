// TSP with island PGAs: defines a travelling-salesman Problem against the
// public API (showing how users plug in their own domains), then compares
// a sequential GA with ring-of-islands PGAs at the same evaluation
// budget — the routing application class of the survey's §4.
package main

import (
	"fmt"
	"math"

	"pga"
)

// tsp is a user-defined Problem: closed-tour length over a permutation.
type tsp struct {
	xs, ys []float64
}

// newCircleTSP places n cities on a circle; the optimal tour follows the
// circle and has length 2·n·sin(π/n), so we can check how close we get.
func newCircleTSP(n int) *tsp {
	t := &tsp{}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		t.xs = append(t.xs, math.Cos(a))
		t.ys = append(t.ys, math.Sin(a))
	}
	return t
}

func (t *tsp) optimum() float64 {
	n := float64(len(t.xs))
	return 2 * n * math.Sin(math.Pi/n)
}

func (t *tsp) Name() string             { return fmt.Sprintf("tsp(%d)", len(t.xs)) }
func (t *tsp) Direction() pga.Direction { return pga.Minimize }

func (t *tsp) NewGenome(r *pga.RNG) pga.Genome {
	return &pga.Permutation{Perm: r.Perm(len(t.xs))}
}

func (t *tsp) Evaluate(g pga.Genome) float64 {
	p := g.(*pga.Permutation).Perm
	total := 0.0
	for i := range p {
		j := (i + 1) % len(p)
		dx := t.xs[p[i]] - t.xs[p[j]]
		dy := t.ys[p[i]] - t.ys[p[j]]
		total += math.Sqrt(dx*dx + dy*dy)
	}
	return total
}

func main() {
	prob := newCircleTSP(40)
	budget := pga.MaxEvaluations(60000)
	fmt.Printf("%s — optimal tour length %.4f, budget %d evaluations\n\n",
		prob.Name(), prob.optimum(), int64(budget))

	// Sequential baseline.
	seq := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   120,
		Crossover: pga.OXCrossover{},
		Mutator:   pga.InversionMutation{},
		RNG:       pga.NewRNG(7),
	})
	res := pga.Run(seq, pga.RunOptions{Stop: budget})
	fmt.Printf("sequential GA       : tour %.4f  (%.2f%% above optimum)\n",
		res.BestFitness, 100*(res.BestFitness/prob.optimum()-1))

	// Islands at several deme counts, same total budget.
	for _, demes := range []int{4, 8} {
		m := pga.NewIslands(pga.IslandConfig{
			Demes:    demes,
			Topology: pga.BiRing,
			GA: pga.GAConfig{
				Problem:   prob,
				PopSize:   120 / demes,
				Crossover: pga.OXCrossover{},
				Mutator:   pga.InversionMutation{},
			},
			Migration: pga.Migration{Interval: 10, Count: 2},
			Seed:      7,
		})
		ires := m.RunSequential(budget, false)
		fmt.Printf("islands (%d × %3d)   : tour %.4f  (%.2f%% above optimum, %d migrations)\n",
			demes, 120/demes, ires.BestFitness,
			100*(ires.BestFitness/prob.optimum()-1), ires.Migrations)
	}
}
