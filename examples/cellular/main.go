// Cellular (fine-grained) GA: evolves a deceptive trap function on a
// toroidal grid and shows how the update policy changes convergence —
// the selection-pressure effect Giacobini et al. analysed. Also runs the
// cellular engine inside an island model (Alba & Troya's cellular
// islands).
package main

import (
	"fmt"

	"pga"
)

func main() {
	prob := pga.DeceptiveTrap(12, 4) // 48 bits, optimum 48
	stop := pga.AnyOf{pga.MaxGenerations(300), pga.Target(prob)}

	fmt.Println("cellular GA on trap(12x4), 10x10 torus, L5 neighbourhood")
	fmt.Println()
	for _, upd := range []pga.UpdatePolicy{pga.SyncUpdate, pga.LineSweepUpdate, pga.NewRandomSweepUpdate} {
		e := pga.NewCellular(pga.CellularConfig{
			Problem:   prob,
			Rows:      10,
			Cols:      10,
			Update:    upd,
			Crossover: pga.TwoPointCrossover{},
			Mutator:   pga.BitFlip{},
			RNG:       pga.NewRNG(5),
		})
		res := pga.Run(e, pga.RunOptions{Stop: stop})
		fmt.Printf("update=%-4v best=%v sweeps=%d evals=%d solved=%v\n",
			upd, res.BestFitness, res.Generations, res.Evaluations, res.Solved)
	}

	fmt.Println()
	fmt.Println("generational baseline (same population size):")
	g := pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   100,
		Crossover: pga.TwoPointCrossover{},
		Mutator:   pga.BitFlip{},
		RNG:       pga.NewRNG(5),
	})
	res := pga.Run(g, pga.RunOptions{Stop: stop})
	fmt.Printf("panmictic   best=%v gens=%d evals=%d solved=%v\n",
		res.BestFitness, res.Generations, res.Evaluations, res.Solved)
	fmt.Println()
	fmt.Println("the grid's mating restriction lowers selection pressure: the cellular")
	fmt.Println("runs spend more evaluations than the panmictic baseline but explore")
	fmt.Println("more broadly, and the asynchronous line sweep converges faster than the")
	fmt.Println("synchronous update — the pressure ordering Giacobini et al. analysed.")
}
