// Multi-objective optimisation with the specialized island model (SIM):
// runs all seven Xiao & Armstrong scenarios on ZDT1 and prints the
// near-front coverage each achieves, plus a text rendering of the best
// front found.
package main

import (
	"fmt"
	"sort"

	"pga"
)

func main() {
	fmt.Println("specialized island model on ZDT1(10): seven scenarios")
	fmt.Println()
	fmt.Printf("%-28s %-10s %-12s %-8s\n", "scenario", "islands", "tight-HV", "archive")

	var bestHV float64
	var bestRes *pga.SIMResult
	for _, s := range pga.SIMScenarios() {
		res := pga.RunSIM(pga.SIMConfig{
			Problem:     pga.ZDT1(10),
			Scenario:    s,
			DemeSize:    30,
			Generations: 60,
			HVRef:       [2]float64{1.1, 1.1},
			Seed:        3,
		})
		fmt.Printf("%-28s %-10d %-12.4f %-8d\n", s, res.Islands, res.Hypervolume, res.Archive.Len())
		if res.Hypervolume > bestHV {
			bestHV, bestRes = res.Hypervolume, res
		}
	}

	fmt.Printf("\nbest front (%s), f1 ascending:\n", bestRes.Scenario)
	items := bestRes.Archive.Items()
	pts := make([][]float64, 0, len(items))
	for _, it := range items {
		if it.Objectives[0] <= 1.1 && it.Objectives[1] <= 1.1 {
			pts = append(pts, it.Objectives)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	shown := 0
	for _, p := range pts {
		if shown >= 12 {
			fmt.Printf("  … and %d more near-front points\n", len(pts)-shown)
			break
		}
		fmt.Printf("  f1=%.4f  f2=%.4f\n", p[0], p[1])
		shown++
	}
}
