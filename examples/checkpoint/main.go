// Checkpoint/restore: runs a GA halfway, saves an exact snapshot to disk
// (population + RNG stream), "crashes", then restores into a fresh
// process-state and finishes — producing the same result as an
// uninterrupted run. This is the long-run resilience feature GALOPPS was
// known for among the survey's Table 1 libraries.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"pga"
)

func buildEngine(prob pga.Problem, r *pga.RNG) pga.Engine {
	return pga.NewGenerational(pga.GAConfig{
		Problem:   prob,
		PopSize:   60,
		Crossover: pga.UniformCrossover{},
		Mutator:   pga.BitFlip{},
		RNG:       r,
	})
}

func main() {
	prob := pga.OneMax(128)
	path := filepath.Join(os.TempDir(), "pga-checkpoint.json")

	// Uninterrupted reference run: 60 generations.
	refRNG := pga.NewRNG(42)
	ref := buildEngine(prob, refRNG)
	for g := 0; g < 60; g++ {
		ref.Step()
	}
	refBest := ref.Population().BestFitness(pga.Maximize)
	fmt.Printf("reference run (60 gens, no interruption): best=%v\n", refBest)

	// Interrupted run: 25 generations, checkpoint to disk, "crash".
	r1 := pga.NewRNG(42)
	e1 := buildEngine(prob, r1)
	for g := 0; g < 25; g++ {
		e1.Step()
	}
	cp, err := pga.CaptureCheckpoint(e1.Population(), r1, 25, 0)
	if err != nil {
		panic(err)
	}
	blob, err := cp.Marshal()
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("checkpointed at generation 25 → %s (%d bytes)\n", path, len(blob))

	// Fresh "process": load the checkpoint and finish the remaining 35
	// generations.
	data, err := os.ReadFile(path)
	if err != nil {
		panic(err)
	}
	loaded, err := pga.LoadCheckpoint(data)
	if err != nil {
		panic(err)
	}
	r2 := pga.NewRNG(0) // engine construction consumes this stream...
	e2 := buildEngine(prob, r2)
	pop, err := loaded.Restore(r2) // ...then Restore rewinds it to the snapshot
	if err != nil {
		panic(err)
	}
	if setter, ok := e2.(interface{ SetPopulation(*pga.Population) }); ok {
		setter.SetPopulation(pop)
	}
	for g := loaded.Generation; g < 60; g++ {
		e2.Step()
	}
	resumedBest := e2.Population().BestFitness(pga.Maximize)
	fmt.Printf("resumed run   (25 saved + 35 after restore): best=%v\n", resumedBest)
	fmt.Printf("bit-identical resume: %v\n", resumedBest == refBest &&
		e2.Population().MeanFitness() == ref.Population().MeanFitness())
	_ = os.Remove(path)
}
