package pga

import (
	"testing"
)

func TestFacadeSequential(t *testing.T) {
	prob := OneMax(64)
	e := NewGenerational(GAConfig{
		Problem:   prob,
		PopSize:   60,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(1),
	})
	res := Run(e, RunOptions{Stop: AnyOf{MaxGenerations(300), Target(prob)}})
	if !res.Solved {
		t.Fatalf("facade generational failed: %v", res.BestFitness)
	}
}

func TestFacadeSteadyState(t *testing.T) {
	prob := OneMax(48)
	e := NewSteadyState(GAConfig{
		Problem:   prob,
		PopSize:   40,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(2),
	})
	res := Run(e, RunOptions{Stop: AnyOf{MaxGenerations(300), Target(prob)}})
	if !res.Solved {
		t.Fatalf("facade steady-state failed: %v", res.BestFitness)
	}
}

func TestFacadeIslands(t *testing.T) {
	prob := OneMax(64)
	m := NewIslands(IslandConfig{
		Demes:    4,
		Topology: Ring,
		GA: GAConfig{
			Problem:   prob,
			PopSize:   30,
			Crossover: UniformCrossover{},
			Mutator:   BitFlip{},
		},
		Migration: Migration{Interval: 5, Count: 2},
		Seed:      3,
	})
	res := m.RunSequential(AnyOf{MaxGenerations(300), Target(prob)}, false)
	if !res.Solved {
		t.Fatalf("facade islands failed: %v", res.BestFitness)
	}
}

func TestFacadeAllTopologies(t *testing.T) {
	prob := OneMax(24)
	for _, top := range []TopologyKind{Ring, BiRing, Star, Complete, Hypercube, Isolated} {
		m := NewIslands(IslandConfig{
			Demes:    4,
			Topology: top,
			GA: GAConfig{
				Problem:   prob,
				PopSize:   10,
				Crossover: UniformCrossover{},
				Mutator:   BitFlip{},
			},
			Migration: Migration{Interval: 3, Count: 1},
			Seed:      4,
		})
		res := m.RunSequential(MaxGenerations(10), false)
		if res.Evaluations == 0 {
			t.Fatalf("topology %d ran no evaluations", top)
		}
	}
}

func TestFacadeHypercubePanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two hypercube")
		}
	}()
	NewIslands(IslandConfig{
		Demes:    5,
		Topology: Hypercube,
		GA:       GAConfig{Problem: OneMax(8), PopSize: 4, Mutator: BitFlip{}},
	})
}

func TestFacadeFarm(t *testing.T) {
	prob := OneMax(48)
	farm := NewFarm(5, UniformWorkers(4))
	e := NewGenerational(GAConfig{
		Problem:   prob,
		PopSize:   40,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		Evaluator: farm,
		RNG:       NewRNG(6),
	})
	res := Run(e, RunOptions{Stop: AnyOf{MaxGenerations(300), Target(prob)}})
	if !res.Solved {
		t.Fatalf("facade farm failed: %v", res.BestFitness)
	}
}

func TestFacadeCellular(t *testing.T) {
	prob := OneMax(32)
	e := NewCellular(CellularConfig{
		Problem:   prob,
		Rows:      6,
		Cols:      6,
		Update:    NewRandomSweepUpdate,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(7),
	})
	res := Run(e, RunOptions{Stop: AnyOf{MaxGenerations(200), Target(prob)}})
	if !res.Solved {
		t.Fatalf("facade cellular failed: %v", res.BestFitness)
	}
}

func TestFacadeHGA(t *testing.T) {
	m := NewHGA(HGAConfig{
		Problem:   QuantizedFidelity(Sphere(6)),
		Crossover: SBXCrossover{},
		Mutator:   PolynomialMutation{},
		Seed:      8,
	})
	res := m.Run(3000)
	if res.Evaluations == 0 {
		t.Fatal("facade HGA ran nothing")
	}
}

func TestFacadeSIM(t *testing.T) {
	for _, s := range SIMScenarios() {
		res := RunSIM(SIMConfig{
			Problem:     ZDT1(8),
			Scenario:    s,
			DemeSize:    16,
			Generations: 10,
			Seed:        9,
		})
		if res.Archive.Len() == 0 {
			t.Fatalf("scenario %v produced empty archive", s)
		}
	}
}

func TestFacadeRealValuedProblems(t *testing.T) {
	r := NewRNG(10)
	for _, p := range []Problem{Sphere(4), Rastrigin(4), Rosenbrock(4), Ackley(4), Griewank(4), Schwefel(4)} {
		g := p.NewGenome(r)
		_ = p.Evaluate(g)
		if p.Direction() != Minimize {
			t.Fatalf("%s not minimised", p.Name())
		}
	}
	if DeceptiveTrap(4, 4).Direction() != Maximize {
		t.Fatal("trap direction")
	}
}

func TestTargetPanicsWithoutOptimum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Target(noTargetProblem{})
}

type noTargetProblem struct{}

func (noTargetProblem) Name() string              { return "x" }
func (noTargetProblem) Direction() Direction      { return Maximize }
func (noTargetProblem) NewGenome(r *RNG) Genome   { return nil }
func (noTargetProblem) Evaluate(g Genome) float64 { return 0 }

func TestFacadeDefaultRNG(t *testing.T) {
	// Engines accept a nil RNG and default to seed 0.
	e := NewGenerational(GAConfig{Problem: OneMax(8), PopSize: 6, Mutator: BitFlip{}})
	e.Step()
	e2 := NewSteadyState(GAConfig{Problem: OneMax(8), PopSize: 6, Mutator: BitFlip{}})
	e2.Step()
	e3 := NewCellular(CellularConfig{Problem: OneMax(8), Rows: 3, Cols: 3, Mutator: BitFlip{}})
	e3.Step()
}

func TestFacadeCheckpoint(t *testing.T) {
	prob := OneMax(32)
	r := NewRNG(3)
	e := NewGenerational(GAConfig{Problem: prob, PopSize: 10, Mutator: BitFlip{}, RNG: r})
	for i := 0; i < 5; i++ {
		e.Step()
	}
	cp, err := CaptureCheckpoint(e.Population(), r, 5, e.Evaluations())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := LoadCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRNG(99)
	pop, err := cp2.Restore(r2)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Len() != 10 {
		t.Fatalf("restored %d members", pop.Len())
	}
}

func TestFacadeP2P(t *testing.T) {
	prob := OneMax(32)
	n := NewP2P(P2PConfig{
		Problem: prob,
		Peers:   6,
		NewEngine: func(peer int, r *RNG) Engine {
			return NewGenerational(GAConfig{
				Problem: prob, PopSize: 10,
				Crossover: UniformCrossover{}, Mutator: BitFlip{}, RNG: r,
			})
		},
		ChurnRate: 0.02,
		Seed:      4,
	})
	res := n.Run(150)
	if !res.Solved {
		t.Fatalf("P2P overlay failed: %v", res.BestFitness)
	}
}

func TestFacadeNewProblems(t *testing.T) {
	r := NewRNG(11)
	for _, p := range []Problem{Step(4), Foxholes()} {
		g := p.NewGenome(r)
		_ = p.Evaluate(g)
		if p.Direction() != Minimize || p.Name() == "" {
			t.Fatalf("%s metadata wrong", p.Name())
		}
	}
}

func TestFacadeParallelGenerational(t *testing.T) {
	prob := OneMax(48)
	e := NewParallelGenerational(GAConfig{
		Problem:   prob,
		PopSize:   40,
		Crossover: UniformCrossover{},
		Mutator:   BitFlip{},
		RNG:       NewRNG(12),
	}, 4)
	res := Run(e, RunOptions{Stop: AnyOf{MaxGenerations(300), Target(prob)}})
	if !res.Solved {
		t.Fatalf("parallel generational facade failed: %v", res.BestFitness)
	}
	// Nil RNG default.
	e2 := NewParallelGenerational(GAConfig{Problem: OneMax(8), PopSize: 6, Mutator: BitFlip{}}, 2)
	e2.Step()
}

func TestFacadeSupervisedIslands(t *testing.T) {
	prob := OneMax(48)
	cfg := IslandConfig{
		Demes:    4,
		Topology: Ring,
		GA: GAConfig{
			Problem:   prob,
			PopSize:   25,
			Crossover: UniformCrossover{},
			Mutator:   BitFlip{},
		},
		Migration:  Migration{Interval: 5, Count: 2, Sync: true},
		Seed:       14,
		Resilience: &Resilience{CheckpointEvery: 5, MaxRestarts: 3},
		Faults:     NewFaultPlan().PanicAt(1, 4),
	}
	res := NewIslands(cfg).RunParallel(300, false)
	if !res.Solved {
		t.Fatalf("supervised facade run failed: %v", res.BestFitness)
	}
	if res.PanicsRecovered < 1 || res.Restarts < 1 {
		t.Fatalf("injected panic not recovered: %+v", res)
	}
	if len(res.Failures) == 0 || res.Failures[0].Kind != FailurePanic {
		t.Fatalf("failure log wrong: %+v", res.Failures)
	}
}

func TestFacadeFaultPlanImpliesSupervision(t *testing.T) {
	// A fault plan without explicit Resilience still runs supervised
	// (otherwise the injected panic would crash the process).
	prob := OneMax(32)
	res := NewIslands(IslandConfig{
		Demes:    4,
		Topology: Ring,
		GA: GAConfig{
			Problem:   prob,
			PopSize:   20,
			Crossover: UniformCrossover{},
			Mutator:   BitFlip{},
		},
		Migration: Migration{Interval: 5, Count: 1, Sync: true},
		Seed:      15,
		Faults:    NewFaultPlan().PanicAt(0, 2),
	}).RunParallel(300, false)
	if res.PanicsRecovered != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", res.PanicsRecovered)
	}
	if !res.Solved {
		t.Fatalf("run did not recover: %v", res.BestFitness)
	}
}

func TestFacadeERX(t *testing.T) {
	r := NewRNG(13)
	a := &Permutation{Perm: r.Perm(10)}
	b := &Permutation{Perm: r.Perm(10)}
	c1, c2 := (ERXCrossover{}).Cross(a, b, r)
	if !c1.(*Permutation).Valid() || !c2.(*Permutation).Valid() {
		t.Fatal("ERX children invalid through facade")
	}
}
