module pga

go 1.22
