# Development gates. CI (.github/workflows/ci.yml) runs the same steps;
# `make lint` is the contributor-facing one-liner for the static gate.

GO ?= go

.PHONY: all build test race bench perf lint tracecover fuzz sweep-smoke

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race coverage for every concurrent runtime.
race:
	$(GO) test -race ./internal/island/... ./internal/supervise/... \
		./internal/masterslave/... ./internal/cellular/... ./internal/p2p/... \
		./internal/cluster/... ./internal/hga/... ./internal/ga/... \
		./internal/transport/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Perf gate: hard allocation budgets on the generation hot path (zero
# steady-state allocs for the sequential engines, small fixed budgets
# for parallel/island), then the JSON benchmark report vs the seed
# baselines (BENCH_8.json — uploaded as a CI artifact). -gate 1.0
# fails the target when a gated word-path benchmark stops beating its
# seed baseline.
perf:
	$(GO) test -run 'AllocBudget' -count=1 ./internal/ga/ ./internal/cellular/ ./internal/island/
	$(GO) run ./cmd/pgabench -json -quick -gate 1.0 -out BENCH_8.json

# Static gate: pgalint (determinism + concurrency contracts) and vet,
# including explicit copylocks/unusedresult passes. -time reports
# per-rule wall time; the 60s deadline fails the gate if the
# interprocedural engine's cost ever outgrows the module, and the
# per-rule budget catches a single rule going quadratic long before
# that. -baseline is the suppression ratchet: the //pgalint:ignore
# count may not grow past lint-baseline.txt without a reviewed bump.
lint:
	$(GO) run ./cmd/pgalint -time -deadline 60s -rulebudget 20s -baseline lint-baseline.txt ./...
	$(GO) vet ./...
	$(GO) vet -copylocks -unusedresult ./...

# Golden-trace coverage audit: every declared RNG-draw equivalence pair
# (core/operators/island DrawPairs) must be exercised by a pinned golden
# scenario or a dedicated equivalence test. Writes the markdown report
# to tracecover.md (uploaded as a CI artifact) and fails on uncovered
# pairs.
# (No pipe to tee: a pipeline would report tee's exit status, not the
# audit's.)
tracecover:
	$(GO) run ./cmd/pgalint -tracecover > tracecover.md || { cat tracecover.md; exit 1; }
	cat tracecover.md

# Short local fuzz passes for the property-tested surfaces: the persist
# wire decoder, the packed BitString vs its []bool reference model, and
# the run-spec parser (structured errors, never panics).
fuzz:
	$(GO) test -fuzz=FuzzUnmarshalPopulation -fuzztime=30s ./internal/persist/
	$(GO) test -fuzz=FuzzBitStringOps -fuzztime=30s ./internal/genome/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/spec/

# Sweep determinism smoke: validate every checked-in sweep config, then
# run the smoke sweep twice and require byte-identical result files.
sweep-smoke:
	@for f in examples/sweeps/*.json; do \
		$(GO) run ./cmd/pgarun -config $$f -validate || exit 1; \
	done
	$(GO) run ./cmd/pgarun -config examples/sweeps/smoke.json -quiet -out /tmp/sweep-a.json
	$(GO) run ./cmd/pgarun -config examples/sweeps/smoke.json -quiet -out /tmp/sweep-b.json
	cmp /tmp/sweep-a.json /tmp/sweep-b.json
	@echo "sweep-smoke: determinism OK"
